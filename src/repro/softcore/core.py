"""The softcore: stored-procedure execution with transaction interleaving.

This is the custom microprocessor of §4.3 (no instruction pipelining,
no out-of-order execution, no general-purpose cache — the paper cites
evidence that none of these pay off for OLTP).  CPU instructions run in
five one-cycle steps; DB instructions take Prepare + Dispatch and are
forwarded *asynchronously* to the local index coprocessor or, via the
on-chip channels, to a remote one.

Transaction interleaving (§4.5, Figure 8) batches transactions by
renaming each into an exclusive GP/CP register range.  Phase one runs
each transaction's logic to the end without waiting for outstanding DB
instructions, saving the context (10-cycle switch) and moving on.
Phase two revisits the batch in serial order: each commit handler waits
for its outstanding DB instructions, then commits — or, on any DB
error or voluntary abort, the abort handler rolls back from the UNDO
log.

At transaction admission, the block's input region is streamed into the
softcore's *working-set buffer* (the BRAM buffer visible in Figure 2);
this is what lets the Dispatch step route DB instructions by key
without a DRAM round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import BionicError
from ..isa.instructions import (
    BlockRef, Cp, FieldRef, Gp, Imm, Instruction, Opcode, Program, Section,
)
from ..mem.txnblock import TransactionBlock, TxnStatus, UndoEntry
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.memory import DramModel
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo
from ..txn.cc import DbResult, ResultCode, abort_write, commit_record
from ..txn.timestamps import HardwareClock
from ..index.common import DbRequest
from .catalogue import Catalogue
from .context import TxnContext, WriteSetEntry
from .registers import CpRegisterFile, RegisterFile

__all__ = ["SoftcoreConfig", "Softcore", "ExecutionError"]

_WRITE_OPS = (Opcode.INSERT, Opcode.UPDATE, Opcode.REMOVE)


class ExecutionError(BionicError, RuntimeError):
    """Raised for malformed runtime situations (bad operand, etc.)."""


@dataclass
class SoftcoreConfig:
    cpu_inst_cycles: float = 5.0
    db_prepare_cycles: float = 1.0
    db_dispatch_cycles: float = 1.0
    ret_cycles: float = 5.0
    context_switch_cycles: float = 10.0
    commit_cycles_per_entry: float = 2.0
    wrfield_cycles: float = 6.0
    catalogue_cycles: float = 2.0
    interleaving: bool = True
    #: §4.5 'future work': switch transactions whenever a RET blocks,
    #: instead of only at end-of-logic (helps data-dependent workloads)
    dynamic_scheduling: bool = False
    max_batch: Optional[int] = None
    n_registers: int = 256
    #: single-entry tuple line buffer: one 64-byte header line holds all
    #: the fields a procedure touches, so consecutive LOAD/WRFIELD to
    #: the same record cost one DRAM read (ablation knob)
    line_buffer: bool = True
    #: optional static conflict hints for §4.5 batch forming
    #: (:class:`repro.analysis.conflict.BatchConflictHints` or anything
    #: exposing ``blocks(proc_id_a, proc_id_b) -> bool``): a transaction
    #: whose procedure must-serialize against one already in the batch
    #: closes the batch instead of joining it.  None (the default)
    #: keeps grouping decisions — and timing — exactly as before.
    conflict_hints: Optional[Any] = None
    #: run registered procedures through the compiled execution tier
    #: (:mod:`repro.softcore.compiled`): per-procedure generated Python
    #: with coalesced cycle charges.  Simulated timing is bit-identical
    #: to the interpreter (``repro.perf`` enforces it); sections the
    #: compiler declines fall back to the interpreter automatically.
    #: Ignored under ``dynamic_scheduling`` and while tracing.
    compiled: bool = False


class Softcore:
    """One partition worker's stored-procedure engine."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        dram: DramModel,
        worker_id: int,
        catalogue: Catalogue,
        hw_clock: HardwareClock,
        config: Optional[SoftcoreConfig] = None,
        stats: Optional[StatsRegistry] = None,
        on_txn_done: Optional[Callable[[TransactionBlock], None]] = None,
        tracer=None,
    ):
        from ..sim.trace import NULL_TRACER
        self.engine = engine
        self.clock = clock
        self.dram = dram
        self.worker_id = worker_id
        self.catalogue = catalogue
        self.hw_clock = hw_clock
        self.config = config or SoftcoreConfig()
        self.stats = stats or StatsRegistry()
        self.on_txn_done = on_txn_done
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.input_queue: Fifo = Fifo(engine, name=f"w{worker_id}.input")
        self.gp = RegisterFile(self.config.n_registers)
        self.cp = CpRegisterFile(engine, self.config.n_registers)
        self.port = dram.new_port(f"w{worker_id}.core", max_outstanding=8,
                                  issue_interval_cycles=1.0)

        # Set by the partition worker that owns this softcore:
        #   route(table_id, key) -> destination partition (None = local)
        #   dispatch(req, dst_partition)
        self.route: Callable[[int, Any], Optional[int]] = lambda _t, _k: None
        self.dispatch: Callable[[DbRequest, Optional[int]], None] = \
            self._reject_dispatch

        self._cp_owner: Dict[int, TxnContext] = {}
        self._pending_info: Dict[int, Tuple[Opcode, int]] = {}
        self._pending_block: Optional[TransactionBlock] = None

        pre = f"worker{worker_id}"
        self._committed = self.stats.counter(f"{pre}.committed")
        self._aborted = self.stats.counter(f"{pre}.aborted")
        self._batches = self.stats.counter(f"{pre}.batches")
        self._insts = self.stats.counter(f"{pre}.instructions")
        self._db_insts = self.stats.counter(f"{pre}.db_instructions")
        self._remote_insts = self.stats.counter(f"{pre}.remote_db_instructions")

        self._compiled = None
        if self.config.compiled and not self.config.dynamic_scheduling:
            from .compiled import CompiledTier
            self._compiled = CompiledTier(self)

        self._proc = engine.process(self._run(), name=f"w{worker_id}.softcore")

    @staticmethod
    def _reject_dispatch(_req, _dst):  # pragma: no cover - must be wired
        raise ExecutionError("softcore has no dispatcher wired")

    # -- client interface --------------------------------------------------
    def submit(self, block: TransactionBlock) -> None:
        block.header.status = TxnStatus.PENDING
        self.input_queue.put(block)

    # -- result delivery (local coprocessor or remote response path) --------
    def deliver(self, cp_global: int, result: DbResult) -> None:
        ctx = self._cp_owner.get(cp_global)
        if ctx is None:
            raise ExecutionError(f"result for unowned CP register {cp_global}")
        op, table_id = self._pending_info.pop(cp_global)
        self.cp.write_back(cp_global, result)
        if result.ok and op in _WRITE_OPS:
            ctx.write_set.append(WriteSetEntry(op, table_id, result.tuple_addr))
        tolerated = (result.code is ResultCode.NOT_FOUND and
                     (cp_global - ctx.cp_base) in ctx.entry.tolerant_cps)
        if not result.ok and not tolerated:
            ctx.failed = True
            if ctx.fail_reason is None:
                ctx.fail_reason = f"{op.value}: {result.code.name}"
        ctx.note_result()

    # -- main loop -----------------------------------------------------------
    def _run(self):
        cfg = self.config
        while True:
            if self._pending_block is not None:
                block, self._pending_block = self._pending_block, None
            else:
                block = yield self.input_queue.get()
            if cfg.interleaving and cfg.dynamic_scheduling:
                batch = yield from self._phase1_dynamic(block)
            else:
                batch = yield from self._phase1_static(block)
            # ---- phase 2: commit/abort handlers in serial order -------------
            for ctx in batch:
                yield self.clock.delay(cfg.context_switch_cycles)
                yield ctx.wait_drained(self.engine)
                if not ctx.failed:
                    yield from self._section_gen(ctx, Section.COMMIT)
                if ctx.failed:
                    yield from self._section_gen(ctx, Section.ABORT)
                self._release(ctx)
            self._batches.add()

    def _admit(self, block: TransactionBlock, batch: List[TxnContext],
               bases: List[int]) -> Optional[TxnContext]:
        """Try to add ``block`` to the current batch (§4.5 transaction
        grouping): allocate an exclusive register range or fail, closing
        the batch (the block is kept for the next one)."""
        cfg = self.config
        entry = self.catalogue.lookup(block.proc_id)
        gp_base, cp_base = bases
        over_cap = (gp_base + entry.gp_needed > cfg.n_registers or
                    cp_base + entry.cp_needed > cfg.n_registers)
        over_batch = (cfg.max_batch is not None and len(batch) >= cfg.max_batch)
        over_conflict = (cfg.conflict_hints is not None and any(
            cfg.conflict_hints.blocks(ctx.block.proc_id, block.proc_id)
            for ctx in batch))
        if batch and (over_cap or over_batch or over_conflict):
            self._pending_block = block
            return None
        ctx = TxnContext(block=block, entry=entry,
                         begin_ts=self.hw_clock.next_ts(),
                         gp_base=gp_base, cp_base=cp_base)
        bases[0] += entry.gp_needed
        bases[1] += entry.cp_needed
        self.gp.clear_range(ctx.gp_base, entry.gp_needed)
        self.cp.clear_range(ctx.cp_base, entry.cp_needed)
        block.header.begin_ts = ctx.begin_ts
        block.header.status = TxnStatus.RUNNING
        batch.append(ctx)
        return ctx

    def _phase1_static(self, block: TransactionBlock):
        """Phase one as the paper implements it: run each transaction's
        logic to the end, switch, and never revisit until phase two."""
        cfg = self.config
        batch: List[TxnContext] = []
        bases = [0, 0]
        while True:
            yield self.clock.delay(cfg.catalogue_cycles)
            ctx = self._admit(block, batch, bases)
            if ctx is None:
                break
            yield from self._ingest(ctx)
            yield from self._section_gen(ctx, Section.LOGIC)
            ctx.finished_logic = True
            yield self.clock.delay(cfg.context_switch_cycles)
            if not cfg.interleaving:
                break
            ok, nxt = self.input_queue.try_get()
            if not ok:
                break
            block = nxt
        return batch

    def _phase1_dynamic(self, block: TransactionBlock):
        """Dynamic scheduling (the §4.5 'future work' variant): when a
        RET blocks on an outstanding DB instruction during transaction
        logic, the softcore switches to another runnable transaction
        instead of stalling, resuming the blocked one when its CP
        register is written back."""
        from collections import deque
        cfg = self.config
        batch: List[TxnContext] = []
        bases = [0, 0]
        ready = deque()
        wake: Fifo = Fifo(self.engine)
        blocked = 0

        yield self.clock.delay(cfg.catalogue_cycles)
        first = self._admit(block, batch, bases)
        yield from self._ingest(first)
        ready.append((first, False))

        while ready or blocked:
            if not ready:
                # nothing runnable: admit new work if possible, else
                # sleep until a blocked transaction is woken
                if self._pending_block is None:
                    ok, nxt = self.input_queue.try_get()
                    if ok:
                        yield self.clock.delay(cfg.catalogue_cycles)
                        ctx = self._admit(nxt, batch, bases)
                        if ctx is not None:
                            yield from self._ingest(ctx)
                            ready.append((ctx, False))
                            continue
                woken = yield wake.get()
                blocked -= 1
                ready.append((woken, True))
                continue
            ctx, resume = ready.popleft()
            yield self.clock.delay(cfg.context_switch_cycles)
            yield from self._exec_section(ctx, Section.LOGIC, resume=resume)
            if ctx.blocked_on is not None:
                cp_idx, ctx.blocked_on = ctx.blocked_on, None
                blocked += 1
                ev = self.cp.wait_valid(cp_idx)
                ev.callbacks.append(lambda _e, c=ctx: wake.put(c))
            else:
                ctx.finished_logic = True
                if self._pending_block is None:
                    ok, nxt = self.input_queue.try_get()
                    if ok:
                        yield self.clock.delay(cfg.catalogue_cycles)
                        ctx2 = self._admit(nxt, batch, bases)
                        if ctx2 is not None:
                            yield from self._ingest(ctx2)
                            ready.append((ctx2, False))
        return batch

    def _ingest(self, ctx: TxnContext):
        """Stream the input region into the working-set buffer (BRAM)."""
        layout = ctx.block.layout
        base = ctx.block.data_base
        first = yield self.port.read(base)
        if layout.n_inputs > 1:
            yield self.clock.delay(layout.n_inputs - 1)  # pipelined burst
        ws = [first]
        for i in range(1, layout.n_inputs):
            ws.append(self.dram.direct_read(base + i))
        ctx.working_set = ws

    def _release(self, ctx: TxnContext) -> None:
        for i in range(ctx.cp_base, ctx.cp_base + ctx.entry.cp_needed):
            self._cp_owner.pop(i, None)
            self._pending_info.pop(i, None)
        if self.on_txn_done is not None:
            self.on_txn_done(ctx.block)

    # -- execution tiers -----------------------------------------------------
    def _section_gen(self, ctx: TxnContext, section: Section):
        """The generator executing ``section``: the compiled tier's
        specialised function when available, else the interpreter.
        Returns (rather than is) a generator so the interpreter path
        pays no extra frame; tracing forces the interpreter because
        per-instruction trace lines only exist there."""
        tier = self._compiled
        if tier is not None and not self.tracer.enabled:
            fn = tier.section_fn(ctx.entry, section)
            if fn is not None:
                return fn(self, ctx)
        return self._exec_section(ctx, section)

    # -- interpreter --------------------------------------------------------
    def _exec_section(self, ctx: TxnContext, section: Section,
                      resume: bool = False):
        ctx.section = section
        if not resume:
            ctx.pc = 0
        insts = ctx.entry.program.section(section)
        while ctx.pc < len(insts):
            inst = insts[ctx.pc]
            ctx.pc += 1
            self._insts.value += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "softcore", f"w{self.worker_id}",
                    f"txn={ctx.txn_id} {section.value}[{ctx.pc - 1}] {inst!r}")
            if inst.is_db:
                yield from self._exec_db(ctx, inst)
            else:
                trap = yield from self._exec_cpu(ctx, inst)
                if trap:
                    return
            if ctx.failed and section is Section.LOGIC:
                return  # exception: the abort handler runs in phase two

    # .. DB instructions ..................................................
    def _exec_db(self, ctx: TxnContext, inst: Instruction):
        cfg = self.config
        # Prepare: collect metadata (index type, timestamp, destination)
        yield self.clock.delay(cfg.db_prepare_cycles)
        schema = self.catalogue.schemas.table(inst.table)
        key_addr, key_value, route_key, payload = self._resolve_key(ctx, inst)
        dst = self.route(inst.table, route_key)
        # Dispatch: asynchronous hand-off to the coprocessor / channels
        yield self.clock.delay(cfg.db_dispatch_cycles)
        cp_global = ctx.cp_base + inst.cp.n
        self.cp.mark_pending(cp_global, inst.opcode)
        self._cp_owner[cp_global] = ctx
        self._pending_info[cp_global] = (inst.opcode, inst.table)
        req = DbRequest(op=inst.opcode, table_id=inst.table, ts=ctx.begin_ts,
                        txn_id=ctx.txn_id, key_addr=key_addr,
                        key_value=key_value, insert_payload=payload,
                        src_worker=self.worker_id, cp_index=cp_global,
                        route_key=route_key)
        if inst.opcode is Opcode.INSERT and isinstance(inst.b, BlockRef):
            req.payload_addr = self._block_addr(ctx, inst.b)
        if inst.opcode in (Opcode.SCAN, Opcode.RANGE_SCAN):
            req.scan_count = int(self._value(ctx, inst.a))
            req.scan_out_addr = self._block_addr(ctx, inst.addr)
            req.scan_limit = ctx.block.layout.n_scan
        if inst.opcode is Opcode.RANGE_SCAN:
            req.scan_hi = self._operand_value(ctx, inst.b)
        ctx.note_dispatch()
        self._db_insts.value += 1
        if dst is not None and dst != self.worker_id:
            self._remote_insts.value += 1
        self.dispatch(req, dst)

    def _resolve_key(self, ctx: TxnContext, inst: Instruction):
        """Returns (key_addr, key_value, routing_key, insert_payload)."""
        key = inst.key
        payload = None
        if isinstance(key, Gp):
            value = self.gp.read(ctx.gp_base + key.n)
            if inst.opcode is Opcode.INSERT and isinstance(value, tuple) \
                    and len(value) == 2:
                value, payload = value
                return None, value, value, payload
            return None, value, value, None
        # BlockRef: the coprocessor's KeyFetch stage will read the cell
        # from DRAM; the softcore routes using its working-set copy.
        addr = self._block_addr(ctx, key)
        offset = addr - ctx.block.data_base
        if 0 <= offset < len(ctx.working_set):
            cell = ctx.working_set[offset]
        else:
            cell = self.dram.direct_read(addr)
        route_key = cell
        if inst.opcode is Opcode.INSERT and isinstance(cell, tuple) \
                and len(cell) == 2:
            route_key = cell[0]
        return addr, None, route_key, None

    def _operand_value(self, ctx: TxnContext, operand):
        """Resolve an Imm/Gp/BlockRef operand to its value (the
        RANGE_SCAN high key; block cells read via the working set)."""
        if isinstance(operand, BlockRef):
            addr = self._block_addr(ctx, operand)
            offset = addr - ctx.block.data_base
            if 0 <= offset < len(ctx.working_set):
                return ctx.working_set[offset]
            return self.dram.direct_read(addr)
        return self._value(ctx, operand)

    # .. CPU instructions ...................................................
    def _exec_cpu(self, ctx: TxnContext, inst: Instruction):
        """Executes one CPU instruction; returns True on a section trap."""
        cfg = self.config
        op = inst.opcode
        if op in (Opcode.RET, Opcode.RETN):
            yield self.clock.delay(cfg.ret_cycles)
            cp_global = ctx.cp_base + inst.cp.n
            if (cfg.dynamic_scheduling and cfg.interleaving
                    and ctx.section is Section.LOGIC
                    and not self.cp.is_valid(cp_global)):
                # dynamic scheduling: yield the softcore to another
                # transaction instead of stalling; the RET re-executes
                # on resume.
                ctx.pc -= 1
                ctx.blocked_on = cp_global
                return True
            db_op, result = yield self.cp.wait_valid(cp_global)
            if (op is Opcode.RETN
                    and result.code is ResultCode.NOT_FOUND):
                # null-tolerant collect: absence is data, not an error
                self.gp.write(ctx.gp_base + inst.dst.n, 0)
                return False
            if result.code is not ResultCode.OK:
                ctx.failed = True
                if ctx.fail_reason is None:
                    ctx.fail_reason = f"{db_op.value}: {result.code.name}"
                return ctx.section is not Section.LOGIC
            value = (result.value
                     if db_op in (Opcode.SCAN, Opcode.RANGE_SCAN)
                     else result.tuple_addr)
            self.gp.write(ctx.gp_base + inst.dst.n, value)
            return False

        if op is Opcode.COMMIT:
            if ctx.section is Section.LOGIC:
                raise ExecutionError("COMMIT outside a commit handler")
            if ctx.failed:
                return True  # fall through to the abort handler
            yield from self._commit_protocol(ctx)
            return False

        if op is Opcode.ABORT:
            if ctx.section is Section.LOGIC:
                ctx.failed = True
                if ctx.fail_reason is None:
                    ctx.fail_reason = "voluntary abort"
                return False  # LOGIC exits via the failed flag
            yield from self._abort_protocol(ctx)
            return False

        yield self.clock.delay(cfg.cpu_inst_cycles)
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
            a = self._value(ctx, inst.a)
            b = self._value(ctx, inst.b)
            if op is Opcode.ADD:
                out = a + b
            elif op is Opcode.SUB:
                out = a - b
            elif op is Opcode.MUL:
                out = a * b
            else:
                out = a // b if isinstance(a, int) and isinstance(b, int) else a / b
            self.gp.write(ctx.gp_base + inst.dst.n, out)
        elif op is Opcode.MOV:
            self.gp.write(ctx.gp_base + inst.dst.n, self._value(ctx, inst.a))
        elif op is Opcode.CMP:
            a = self._value(ctx, inst.a)
            b = self._value(ctx, inst.b)
            ctx.zero = a == b
            ctx.neg = a < b
        elif op is Opcode.LOAD:
            value = yield from self._load(ctx, inst.addr)
            self.gp.write(ctx.gp_base + inst.dst.n, value)
        elif op is Opcode.STORE:
            yield from self._store(ctx, inst.addr, self._value(ctx, inst.a))
        elif op is Opcode.WRFIELD:
            yield from self._wrfield(ctx, inst)
        elif op is Opcode.JMP:
            ctx.pc = inst.target
        elif op is Opcode.BE:
            if ctx.zero:
                ctx.pc = inst.target
        elif op is Opcode.BNE:
            if not ctx.zero:
                ctx.pc = inst.target
        elif op is Opcode.BLT:
            if ctx.neg:
                ctx.pc = inst.target
        elif op is Opcode.BLE:
            if ctx.neg or ctx.zero:
                ctx.pc = inst.target
        elif op is Opcode.BGT:
            if not (ctx.neg or ctx.zero):
                ctx.pc = inst.target
        elif op is Opcode.BGE:
            if not ctx.neg:
                ctx.pc = inst.target
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover
            raise ExecutionError(f"unhandled opcode {op}")
        return False

    # .. memory helpers ....................................................
    def _read_record(self, ctx: TxnContext, addr: int):
        """Fetch a tuple header line, via the context's single-entry
        line buffer: the 64-byte line holds every header field, so
        consecutive field accesses to the same record cost one read."""
        if (self.config.line_buffer and ctx.line_buf is not None
                and ctx.line_buf_addr == addr):
            return ctx.line_buf
        record = yield self.port.read(addr)
        ctx.line_buf_addr = addr
        ctx.line_buf = record
        return record

    def _load(self, ctx: TxnContext, ref):
        if isinstance(ref, FieldRef):
            addr = self.gp.read(ctx.gp_base + ref.base.n)
            record = yield from self._read_record(ctx, addr)
            if record is None:
                raise ExecutionError(f"LOAD from empty cell {addr}")
            return record.fields[ref.field]
        addr = self._block_addr(ctx, ref)
        offset = addr - ctx.block.data_base
        if 0 <= offset < len(ctx.working_set):
            return ctx.working_set[offset]  # working-set buffer hit (BRAM)
        value = yield self.port.read(addr)
        return value

    def _store(self, ctx: TxnContext, ref, value):
        if isinstance(ref, FieldRef):
            addr = self.gp.read(ctx.gp_base + ref.base.n)
            field = ref.field

            def apply(record):
                record.fields[field] = value
            self.port.post_apply(addr, apply)
        else:
            addr = self._block_addr(ctx, ref)
            offset = addr - ctx.block.data_base
            if 0 <= offset < len(ctx.working_set):
                ctx.working_set[offset] = value
            self.port.post_write(addr, value)
        return
        yield  # pragma: no cover - keeps this a generator

    def _wrfield(self, ctx: TxnContext, inst: Instruction):
        """Backup-and-write: UNDO-log the old field value, then update
        the tuple in place (§4.7 UPDATE semantics)."""
        cfg = self.config
        yield self.clock.delay(cfg.wrfield_cycles)
        ref: FieldRef = inst.addr
        addr = self.gp.read(ctx.gp_base + ref.base.n)
        value = self._value(ctx, inst.a)
        record = yield from self._read_record(ctx, addr)
        if record is None:
            raise ExecutionError(f"WRFIELD on empty cell {addr}")
        entry = UndoEntry(tuple_addr=addr, field=ref.field,
                          old_value=record.fields[ref.field])
        ctx.undo.append(entry)
        slot = ctx.block.undo_slot(len(ctx.undo) - 1)
        ctx.block.header.undo_count = len(ctx.undo)
        self.port.post_write(slot, entry)
        # apply in place: the tuple is dirty-locked by this transaction's
        # UPDATE, so no other reader can legally observe the window; the
        # posted write accounts for the masked-line store.
        record.fields[ref.field] = value
        self.port.post_write(addr, record)

    def _block_addr(self, ctx: TxnContext, ref: BlockRef) -> int:
        offset = ref.offset
        if isinstance(offset, Gp):
            offset = self.gp.read(ctx.gp_base + offset.n)
        return ctx.block.data_base + int(offset) + ref.extra

    def _value(self, ctx: TxnContext, operand) -> Any:
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Gp):
            return self.gp.read(ctx.gp_base + operand.n)
        raise ExecutionError(f"bad value operand {operand!r}")

    # .. commit / abort protocols (§4.7) .....................................
    def _commit_protocol(self, ctx: TxnContext):
        cfg = self.config
        last_ev = None
        for entry in ctx.write_set:
            yield self.clock.delay(cfg.commit_cycles_per_entry)
            last_ev = self.port.apply(entry.tuple_addr,
                                      self._commit_fixup(ctx.begin_ts))
        if last_ev is not None:
            yield last_ev
        ctx.block.header.status = TxnStatus.COMMITTED
        ctx.block.header.commit_ts = ctx.begin_ts
        self.port.post_write(ctx.block.base, ctx.block.header)
        self._committed.add()
        if self.tracer.enabled:
            self.tracer.emit("txn", f"w{self.worker_id}",
                             f"txn={ctx.txn_id} COMMIT ts={ctx.begin_ts} "
                             f"writes={len(ctx.write_set)}")

    @staticmethod
    def _commit_fixup(commit_ts: int):
        def apply(record):
            commit_record(record, commit_ts)
        return apply

    def _abort_protocol(self, ctx: TxnContext):
        cfg = self.config
        last_ev = None
        # restore overwritten fields from the UNDO log, newest first
        for entry in reversed(ctx.undo):
            yield self.clock.delay(cfg.commit_cycles_per_entry)
            last_ev = self.port.apply(entry.tuple_addr,
                                      self._restore_fixup(entry))
        # clear dirty marks; aborted inserts become tombstones
        for wse in ctx.write_set:
            yield self.clock.delay(cfg.commit_cycles_per_entry)
            last_ev = self.port.apply(
                wse.tuple_addr, self._abort_fixup(wse.op is Opcode.INSERT))
        if last_ev is not None:
            yield last_ev
        ctx.block.header.status = TxnStatus.ABORTED
        ctx.block.header.abort_reason = ctx.fail_reason
        self.port.post_write(ctx.block.base, ctx.block.header)
        self._aborted.add()
        if self.tracer.enabled:
            self.tracer.emit("txn", f"w{self.worker_id}",
                             f"txn={ctx.txn_id} ABORT ({ctx.fail_reason})")

    @staticmethod
    def _restore_fixup(entry: UndoEntry):
        def apply(record):
            record.fields[entry.field] = entry.old_value
        return apply

    @staticmethod
    def _abort_fixup(was_insert: bool):
        def apply(record):
            abort_write(record, was_insert=was_insert)
        return apply
