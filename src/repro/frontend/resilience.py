"""Overload-resilience primitives: retry budgets, breakers, brownout.

Three independent mechanisms, composable behind a single
:class:`ResilienceConfig` (disabled by default so the serving path is
bit-identical to the pre-resilience front-end):

* :class:`RetryBudget` — a per-priority-class token bucket funded by
  *first-attempt* traffic: every first attempt deposits ``ratio``
  tokens (capped at ``burst``), every retry spends one.  Retries can
  therefore never exceed ``burst + ratio × first_attempts`` — the
  amplification bound that keeps a transient failure from turning into
  a metastable retry storm.
* :class:`CircuitBreaker` / :class:`BreakerBank` — one closed → open →
  half-open state machine per partition, tripped by the failure rate
  over a sliding sample window (``PartitionUnavailableError`` and
  friends count as failures).  Open breakers fail fast instead of
  queueing doomed work; after ``open_ns`` a bounded number of probes
  is let through and the breaker closes again only on probe success.
* :class:`BrownoutController` — priority-class load shedding layered
  on top of token-bucket admission: as the dispatch backlog fills past
  a per-class fraction of capacity, low-priority classes are shed
  first (class 0 is never browned out by default).  Hysteresis keeps
  the controller from flapping at the threshold.

The engine-embedded consumer of these pieces is
:class:`repro.frontend.router.RequestRouter`; the control-plane
consumer is :class:`repro.frontend.router.ClusterRetryRouter`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "REASON_BROWNOUT", "REASON_BREAKER", "REASON_RETRY_BUDGET",
    "REASON_PARK_EXPIRED",
    "RetryBudgetConfig", "RetryBudget",
    "BreakerConfig", "CircuitBreaker", "BreakerBank",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
    "BrownoutConfig", "BrownoutController",
    "ResilienceConfig",
]

#: shed reasons stamped into ``Request.reason`` / ``abort_reason``
REASON_BROWNOUT = "brownout-shed"
REASON_BREAKER = "breaker-open"
REASON_RETRY_BUDGET = "retry-budget-exhausted"
REASON_PARK_EXPIRED = "parked-past-budget"


# -- retry budget ------------------------------------------------------------

@dataclass
class RetryBudgetConfig:
    enabled: bool = True
    #: tokens deposited per first attempt — the steady-state bound on
    #: retries as a fraction of first-attempt traffic
    ratio: float = 0.5
    #: bucket capacity (and initial fill): the burst of retries allowed
    #: before the fraction bound bites
    burst: int = 16

    def __post_init__(self):
        if self.ratio < 0:
            raise ConfigError("retry-budget ratio must be >= 0",
                              ratio=self.ratio)
        if self.burst < 0:
            raise ConfigError("retry-budget burst must be >= 0",
                              burst=self.burst)


class RetryBudget:
    """Per-class token bucket funded by first-attempt traffic.

    Classes are small ints (session priority).  Each class gets its own
    bucket so a storming low-priority tenant cannot drain the retry
    capacity of well-behaved high-priority traffic.
    """

    def __init__(self, config: Optional[RetryBudgetConfig] = None):
        self.config = config or RetryBudgetConfig()
        self._tokens: Dict[int, float] = {}
        self.first_attempts: Dict[int, int] = {}
        self.granted: Dict[int, int] = {}
        self.denied: Dict[int, int] = {}

    def _bucket(self, cls: int) -> float:
        return self._tokens.setdefault(cls, float(self.config.burst))

    def note_first_attempt(self, cls: int = 0) -> None:
        """A first attempt funds ``ratio`` tokens of future retries."""
        self.first_attempts[cls] = self.first_attempts.get(cls, 0) + 1
        tokens = self._bucket(cls)
        self._tokens[cls] = min(float(self.config.burst),
                                tokens + self.config.ratio)

    def deposit(self, amount: float, cls: int = 0) -> None:
        """Out-of-band refill (e.g. a control-plane settle round) so a
        long recovery cannot starve once the storm has passed; still
        capped at ``burst`` so amplification stays bounded."""
        tokens = self._bucket(cls)
        self._tokens[cls] = min(float(self.config.burst), tokens + amount)

    def try_spend(self, cls: int = 0) -> bool:
        """Spend one token for a retry; ``False`` = budget exhausted."""
        if not self.config.enabled:
            return True
        tokens = self._bucket(cls)
        if tokens >= 1.0:
            self._tokens[cls] = tokens - 1.0
            self.granted[cls] = self.granted.get(cls, 0) + 1
            return True
        self.denied[cls] = self.denied.get(cls, 0) + 1
        return False

    def tokens(self, cls: int = 0) -> float:
        return self._bucket(cls)

    def totals(self) -> Dict[str, int]:
        return {"granted": sum(self.granted.values()),
                "denied": sum(self.denied.values())}


# -- circuit breakers --------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    enabled: bool = True
    #: sliding sample window (successes + failures) the trip decision
    #: is taken over
    window: int = 16
    #: don't trip on fewer than this many samples in the window
    min_samples: int = 3
    #: failure fraction of the window at which the breaker opens
    failure_threshold: float = 0.5
    #: cooldown before an open breaker admits half-open probes
    open_ns: float = 2_000_000.0
    #: probes admitted while half-open
    half_open_probes: int = 2
    #: consecutive probe successes required to close again
    close_after: int = 1

    def __post_init__(self):
        if self.window < 1:
            raise ConfigError("breaker window must be >= 1",
                              window=self.window)
        if not 1 <= self.min_samples <= self.window:
            raise ConfigError("breaker min_samples must be in [1, window]",
                              min_samples=self.min_samples,
                              window=self.window)
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigError("breaker failure_threshold must be in (0, 1]",
                              failure_threshold=self.failure_threshold)
        if self.open_ns < 0:
            raise ConfigError("breaker open_ns must be >= 0",
                              open_ns=self.open_ns)
        if self.half_open_probes < 1:
            raise ConfigError("breaker half_open_probes must be >= 1",
                              half_open_probes=self.half_open_probes)
        if not 1 <= self.close_after <= self.half_open_probes:
            raise ConfigError(
                "breaker close_after must be in [1, half_open_probes] "
                "(more successes than probes could never close)",
                close_after=self.close_after,
                half_open_probes=self.half_open_probes)


class CircuitBreaker:
    """closed → open → half-open state machine for one partition."""

    __slots__ = ("config", "partition", "state", "_window", "_opened_at",
                 "_probes_left", "_probe_successes",
                 "opened", "half_opened", "reclosed")

    def __init__(self, config: BreakerConfig, partition: int = 0):
        self.config = config
        self.partition = partition
        self.state = BREAKER_CLOSED
        self._window: Deque[int] = deque(maxlen=config.window)
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0
        # transition counters (surfaced in FrontendReport)
        self.opened = 0
        self.half_opened = 0
        self.reclosed = 0

    def allow(self, now_ns: float) -> bool:
        """May a request pass?  Advances open → half-open after the
        cooldown; half-open admits a bounded number of probes."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now_ns - self._opened_at >= self.config.open_ns:
                self.state = BREAKER_HALF_OPEN
                self.half_opened += 1
                self._probes_left = self.config.half_open_probes - 1
                self._probe_successes = 0
                return True
            return False
        # half-open: bounded probes
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self, now_ns: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after:
                self.state = BREAKER_CLOSED
                self.reclosed += 1
                self._window.clear()
        elif self.state == BREAKER_CLOSED:
            self._window.append(0)

    def record_failure(self, now_ns: float) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._trip(now_ns)      # a failed probe re-opens immediately
            return
        if self.state == BREAKER_OPEN:
            return
        window = self._window
        window.append(1)
        if (len(window) >= self.config.min_samples
                and sum(window) >= self.config.failure_threshold * len(window)):
            self._trip(now_ns)

    def _trip(self, now_ns: float) -> None:
        self.state = BREAKER_OPEN
        self.opened += 1
        self._opened_at = now_ns
        self._window.clear()


class BreakerBank:
    """Lazy per-partition breakers plus aggregate accounting."""

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self._breakers: Dict[int, CircuitBreaker] = {}

    def breaker(self, partition: int) -> CircuitBreaker:
        brk = self._breakers.get(partition)
        if brk is None:
            brk = self._breakers[partition] = CircuitBreaker(
                self.config, partition)
        return brk

    def allow(self, partition: int, now_ns: float) -> bool:
        if not self.config.enabled:
            return True
        return self.breaker(partition).allow(now_ns)

    def record_success(self, partition: int, now_ns: float) -> None:
        if self.config.enabled:
            self.breaker(partition).record_success(now_ns)

    def record_failure(self, partition: int, now_ns: float) -> None:
        if self.config.enabled:
            self.breaker(partition).record_failure(now_ns)

    def states(self) -> Dict[int, str]:
        return {p: self._breakers[p].state for p in sorted(self._breakers)}

    def all_closed(self) -> bool:
        return all(b.state == BREAKER_CLOSED
                   for b in self._breakers.values())

    def transitions(self) -> Dict[str, int]:
        breakers = self._breakers.values()
        return {"opened": sum(b.opened for b in breakers),
                "half_opened": sum(b.half_opened for b in breakers),
                "reclosed": sum(b.reclosed for b in breakers)}


# -- brownout (priority-class load shedding) ---------------------------------

@dataclass
class BrownoutConfig:
    enabled: bool = True
    #: per-priority-class backlog fraction at which that class starts
    #: shedding; class ``c`` uses ``shed_at[min(c, len-1)]``.  Values
    #: above the largest reachable backlog fraction never trigger —
    #: the default never browns out class 0.
    shed_at: Tuple[float, ...] = (2.0, 0.85, 0.6)
    #: hysteresis: once shedding, a class resumes only when the backlog
    #: fraction falls back below ``threshold * release``
    release: float = 0.75
    #: backlog capacity the fractions are measured against; ``None``
    #: inherits the admission controller's ``max_backlog``
    capacity: Optional[int] = None

    def __post_init__(self):
        if not self.shed_at:
            raise ConfigError("brownout shed_at must name at least one class")
        for frac in self.shed_at:
            if frac <= 0:
                raise ConfigError("brownout shed_at fractions must be > 0",
                                  shed_at=self.shed_at)
        if not 0.0 < self.release <= 1.0:
            raise ConfigError("brownout release must be in (0, 1]",
                              release=self.release)
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError("brownout capacity must be >= 1 (or None)",
                              capacity=self.capacity)


class BrownoutController:
    """Backlog-driven priority shedding with hysteresis.

    Past-deadline work is already shed ahead of this check (the pump
    times out expired requests before admission), so brownout only has
    to order the *live* work by priority class.
    """

    def __init__(self, config: Optional[BrownoutConfig] = None,
                 capacity: Optional[int] = None):
        self.config = config or BrownoutConfig()
        self.capacity = (self.config.capacity
                         if self.config.capacity is not None else capacity)
        self._active: Dict[int, bool] = {}
        self.shed_counts: Dict[int, int] = {}

    def threshold(self, priority: int) -> float:
        shed_at = self.config.shed_at
        return shed_at[min(priority, len(shed_at) - 1)]

    def should_shed(self, priority: int, backlog: int) -> bool:
        """Shed this request?  Stateful: tracks per-class activation so
        the controller releases below the threshold it engaged at."""
        if not self.config.enabled or not self.capacity:
            return False
        fraction = backlog / self.capacity
        threshold = self.threshold(priority)
        active = self._active.get(priority, False)
        if active:
            if fraction < threshold * self.config.release:
                self._active[priority] = False
                return False
            return True
        if fraction >= threshold:
            self._active[priority] = True
            return True
        return False

    def note_shed(self, priority: int) -> None:
        self.shed_counts[priority] = self.shed_counts.get(priority, 0) + 1


# -- the umbrella config -----------------------------------------------------

@dataclass
class ResilienceConfig:
    """Knobs for the overload-resilience layer.

    ``enabled=False`` (the default) keeps the serving path bit-identical
    to the pre-resilience front-end: no router is constructed, no hook
    runs, and the ``repro.perf`` goldens are unaffected.
    """

    enabled: bool = False
    budget: RetryBudgetConfig = field(default_factory=RetryBudgetConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    brownout: BrownoutConfig = field(default_factory=BrownoutConfig)
    #: re-plan CrossNodeTransactionError submits onto the block's true
    #: home lane instead of failing the request
    rehome: bool = True
    #: consult the static footprint summaries
    #: (:meth:`repro.cluster.system.BionicCluster.footprint_index`) at
    #: admission and move a home-anchored request onto its block's home
    #: node *before* submit — the CrossNodeTransactionError bounce the
    #: rehome path would otherwise pay never happens
    static_planning: bool = False
    #: hold requests bounced by a retryable cluster error and replay
    #: them when the partition heals, instead of failing to the client
    park: bool = True
    #: replay poll cadence while requests are parked
    replay_interval_ns: float = 250_000.0
    #: give up on a parked request after this long (rejected to client)
    max_park_ns: float = 5_000_000.0

    def __post_init__(self):
        if self.replay_interval_ns <= 0:
            raise ConfigError("replay_interval_ns must be > 0",
                              replay_interval_ns=self.replay_interval_ns)
        if self.max_park_ns < self.replay_interval_ns:
            raise ConfigError(
                "max_park_ns must be >= replay_interval_ns",
                max_park_ns=self.max_park_ns,
                replay_interval_ns=self.replay_interval_ns)
