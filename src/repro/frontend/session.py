"""Client sessions: who is sending, how fast, and what they do on failure.

A :class:`ClientSession` is one tenant's connection through the
front-end.  It owns an arrival process (open-loop Poisson that never
waits, or closed-loop with a concurrency window and think time), a
fair-queuing weight, an optional per-request deadline, a retry policy
for shed requests, and per-session accounting
(:class:`~repro.frontend.slo.SessionStats`).

Blocks are created lazily at their arrival instants — exactly as a
network client would deliver them — via the session's ``factory``,
which has the same shape the open-loop client has always used:
``factory(i) -> (TransactionBlock, home_worker)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..errors import ConfigError
from .slo import SessionStats

__all__ = ["SessionConfig", "ClientSession", "Request"]


class Request:
    """One in-flight unit of client work: a block plus serving metadata."""

    __slots__ = ("session", "index", "block", "home", "deadline_at_ns",
                 "created_at_ns", "outcome", "reason", "done_event", "seq",
                 "attempts", "in_system", "first_parked_ns")

    def __init__(self, session: "ClientSession", index: int, block,
                 home: int, created_at_ns: float,
                 deadline_at_ns: Optional[float], done_event):
        self.session = session
        self.index = index
        self.block = block
        self.home = home
        self.created_at_ns = created_at_ns
        self.deadline_at_ns = deadline_at_ns
        self.outcome: Optional[str] = None    # committed|aborted|rejected|timed_out
        self.reason: Optional[str] = None
        self.done_event = done_event
        self.seq = 0
        self.attempts = 0
        #: True once the pump has accepted this attempt — a second RX
        #: copy of the same attempt (an injected duplicate) is discarded
        self.in_system = False
        #: set by the router when a retryable cluster error first parks
        #: this attempt — bounds how long a request may wait for a
        #: partition to heal before it is shed back to the client
        self.first_parked_ns: Optional[float] = None

    def expired(self, now_ns: float) -> bool:
        return self.deadline_at_ns is not None and now_ns > self.deadline_at_ns

    def reset_for_retry(self, engine) -> None:
        """Clear the previous shed outcome so the block can re-enter.

        The deadline is *not* extended: SLOs are end-to-end, so retries
        race the original clock.
        """
        self.block.reset_for_replay()
        self.block.submitted_at_ns = None
        self.block.done_at_ns = None
        self.outcome = None
        self.reason = None
        self.in_system = False
        self.first_parked_ns = None
        self.done_event = engine.event()


@dataclass
class SessionConfig:
    name: str = "client"
    #: "open" = Poisson arrivals that never wait (needs ``rate_tps``);
    #: "closed" = a window of ``concurrency`` outstanding requests with
    #: exponential think time between completions
    arrival: str = "open"
    rate_tps: Optional[float] = None
    n_requests: int = 0
    #: weighted-fair dispatch share relative to other sessions
    weight: float = 1.0
    #: per-request SLO deadline, ns from creation; ``None`` = no deadline
    deadline_ns: Optional[float] = None
    think_ns: float = 0.0
    concurrency: int = 1
    #: retry-with-backoff policy for REJECTED requests (shed by the NIC
    #: or by admission control); timed-out requests are never retried
    max_retries: int = 0
    retry_backoff_ns: float = 20_000.0
    #: backoff jitter fraction in [0, 1]: each backoff is scaled by a
    #: factor drawn in ``[1 - retry_jitter, 1]`` from the session RNG
    #: (sharable via ``rng=`` so drills reproduce from one seed) —
    #: de-synchronises retry storms without extending SLO clocks
    retry_jitter: float = 0.0
    #: priority class for brownout shedding and retry budgeting:
    #: 0 = most important (never browned out by default), higher =
    #: shed earlier under overload
    priority: int = 0
    #: arrival-process start offset, ns from session creation — lets a
    #: flash crowd or storm session begin mid-run
    start_ns: float = 0.0
    seed: int = 1

    def __post_init__(self):
        if self.arrival not in ("open", "closed"):
            raise ConfigError(f"unknown arrival kind {self.arrival!r}")
        if self.arrival == "open":
            if self.rate_tps is None or self.rate_tps <= 0:
                raise ConfigError(
                    "open-loop sessions need a positive rate_tps",
                    rate_tps=self.rate_tps)
        if self.n_requests < 0:
            raise ConfigError("n_requests must be >= 0",
                              n_requests=self.n_requests)
        if self.weight <= 0:
            raise ConfigError("weight must be positive", weight=self.weight)
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ConfigError(
                "deadline_ns must be positive (or None); a zero deadline "
                "would time out every request at admission",
                deadline_ns=self.deadline_ns)
        if self.think_ns < 0:
            raise ConfigError("think_ns must be >= 0", think_ns=self.think_ns)
        if self.concurrency < 1:
            raise ConfigError("concurrency must be >= 1",
                              concurrency=self.concurrency)
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0",
                              max_retries=self.max_retries)
        if self.retry_backoff_ns < 0:
            raise ConfigError("retry_backoff_ns must be >= 0",
                              retry_backoff_ns=self.retry_backoff_ns)
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigError("retry_jitter must be in [0, 1]",
                              retry_jitter=self.retry_jitter)
        if self.priority < 0:
            raise ConfigError("priority must be >= 0",
                              priority=self.priority)
        if self.start_ns < 0:
            raise ConfigError("start_ns must be >= 0",
                              start_ns=self.start_ns)


class ClientSession:
    """One tenant's traffic source, wired through a FrontEnd."""

    def __init__(self, frontend, session_id: int, config: SessionConfig,
                 factory: Callable[[int], Tuple[Any, int]],
                 rng: Optional[random.Random] = None):
        self.frontend = frontend
        self.id = session_id
        self.config = config
        self.factory = factory
        self.stats = SessionStats(name=config.name, priority=config.priority)
        self.requests = []            # every Request ever generated
        #: arrivals, think time and retry jitter all draw from this —
        #: pass the workload's RNG (``rng=``) to make a multi-session
        #: overload drill reproducible from a single seed
        self._rng = rng if rng is not None else random.Random(config.seed)
        engine = frontend.engine
        if config.arrival == "open":
            proc = engine.process(self._open_loop(),
                                  name=f"frontend.session.{config.name}")
            frontend._track(proc)
        else:
            counter = iter(range(config.n_requests))
            for c in range(config.concurrency):
                proc = engine.process(
                    self._closed_loop(counter),
                    name=f"frontend.session.{config.name}.{c}")
                frontend._track(proc)

    # -- request construction ----------------------------------------------
    def _make(self, i: int) -> Request:
        engine = self.frontend.engine
        block, home = self.factory(i)
        now = engine.now
        block.created_at_ns = now
        deadline = (now + self.config.deadline_ns
                    if self.config.deadline_ns is not None else None)
        block.deadline_ns = deadline
        req = Request(self, i, block, home, now, deadline, engine.event())
        self.stats.offered += 1
        self.requests.append(req)
        return req

    # -- arrival processes ---------------------------------------------------
    def _open_loop(self):
        if self.config.start_ns > 0:
            yield self.config.start_ns
        gap_ns = 1e9 / self.config.rate_tps
        for i in range(self.config.n_requests):
            req = self._make(i)
            self.frontend._launch(req)
            yield self._rng.expovariate(1.0) * gap_ns

    def _closed_loop(self, counter):
        if self.config.start_ns > 0:
            yield self.config.start_ns
        for i in counter:
            req = self._make(i)
            yield from self.frontend._deliver(req)
            if self.config.think_ns > 0:
                yield self._rng.expovariate(1.0) * self.config.think_ns

    # -- terminal accounting -------------------------------------------------
    def _record_terminal(self, req: Request) -> None:
        self.stats.record(req)
