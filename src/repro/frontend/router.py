"""The cluster-aware retry router: planning behind typed retry signals.

Two faces over the same :mod:`repro.frontend.resilience` primitives:

* :class:`RequestRouter` — embedded in a :class:`FrontEnd`, on the
  discrete-event engine.  It gates admission (brownout shedding by
  priority class, per-partition circuit breakers), re-homes
  ``CrossNodeTransactionError`` submits onto the block's true home
  lane, parks requests bounced by a retryable cluster error and
  replays them when the partition heals, and enforces the per-class
  retry budget on the session retry loop.
* :class:`ClusterRetryRouter` — a control-plane planner over
  :class:`repro.cluster.ha.HACluster`'s hand-advanced clock.  It
  caches ``ownership_map()``, refreshes it on ``StaleEpochError``
  (re-homing submits to the current owner), reconciles against the
  authoritative log before any re-execution so retries never
  double-apply, lets the cluster queue-and-replay during migration
  windows, and fails fast through the same breaker/budget machinery
  so a failover cannot snowball into a retry storm.

Both are exercised by ``repro.faults.overload_drill`` (``python -m
repro.faults.drill --suite overload``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ..errors import (
    FrontendError, PartitionUnavailableError, ReplicationStalledError,
    StaleEpochError,
)
from .resilience import (
    REASON_BREAKER, REASON_BROWNOUT, REASON_PARK_EXPIRED,
    BreakerBank, BreakerConfig, BrownoutController, ResilienceConfig,
    RetryBudget, RetryBudgetConfig,
)

__all__ = ["RequestRouter", "ClusterRouterConfig", "ClusterRetryRouter"]


class RequestRouter:
    """The FrontEnd-embedded overload-resilience layer.

    Constructed only when ``FrontendConfig.resilience.enabled`` — the
    disabled path keeps the serving path bit-identical (zero events,
    zero RNG draws, zero extra state).
    """

    def __init__(self, frontend):
        self.frontend = frontend
        self.engine = frontend.engine
        self.config: ResilienceConfig = frontend.config.resilience
        self.budget = RetryBudget(self.config.budget)
        self.breakers = BreakerBank(self.config.breaker)
        self.brownout = BrownoutController(
            self.config.brownout,
            capacity=frontend.config.admission.max_backlog)
        self._parked: List[Any] = []
        self._replay_armed = False
        # counters surfaced in FrontendReport
        self.rehomed = 0
        self.parked = 0
        self.replayed = 0
        self.planned = 0
        self.breaker_fast_fails = 0
        # static pre-classification (repro.analysis.footprint): built
        # from the db's procedure catalogue when the backend exposes
        # one and the config opts in; None keeps planning dynamic-only
        self._footprints = None
        if self.config.static_planning:
            index = getattr(frontend.db, "footprint_index", None)
            if index is not None:
                self._footprints = index()

    # -- admission-side gate (runs in the pump, before the bucket) ----------
    def gate(self, req, now_ns: float) -> Optional[str]:
        """Shed reason for this request, or ``None`` to let it through.

        Brownout first (cheapest signal, protects the whole box), then
        the target partition's breaker (protects queue slots from work
        that is known to be doomed)."""
        priority = req.session.config.priority
        if self.brownout.should_shed(priority,
                                     self.frontend.scheduler.backlog):
            self.brownout.note_shed(priority)
            return REASON_BROWNOUT
        if not self.breakers.allow(req.home, now_ns):
            self.breaker_fast_fails += 1
            return REASON_BREAKER
        return None

    # -- submit-side planning ------------------------------------------------
    def plan(self, req) -> None:
        """Statically pre-classify the request before it is enqueued:
        when the block's procedure footprint proves it home-anchored
        (single-node) and the chosen lane is on a *different* node,
        move the request onto the block's home lane now — the
        ``CrossNodeTransactionError`` bounce that :meth:`rehome` would
        later re-plan from never happens.  Same-node lanes are left
        alone (the on-chip channels serve those), as are procedures the
        analysis cannot bound (the dynamic bounce path still works)."""
        if self._footprints is None:
            return
        block = getattr(req, "block", None)
        target = getattr(block, "home_worker", None)
        if target is None or target == req.home:
            return
        node_of = getattr(self.frontend.db, "node_of", None)
        if node_of is None or node_of(req.home) == node_of(target):
            return
        route = self._footprints.classify(block.proc_id, target)
        if route is not None and route.single_node:
            req.home = target
            self.planned += 1

    def rehome(self, req, exc) -> bool:
        """A ``CrossNodeTransactionError``: the block lives in another
        node's DRAM.  Re-plan onto the block's true home lane instead
        of failing the request back to the client."""
        if not self.config.rehome:
            return False
        target = getattr(req.block, "home_worker", None)
        if target is None or target == req.home:
            return False
        owner_map = getattr(self.frontend.db, "ownership_map", None)
        if owner_map is not None:
            owner, _epoch = owner_map().get(target, (None, None))
            if owner is None:
                return False
        req.home = target
        self.rehomed += 1
        self.frontend.scheduler.enqueue(req)
        return True

    def park(self, req, now_ns: float) -> bool:
        """Hold a request bounced by a retryable cluster error and
        replay it when the partition heals; ``False`` = don't park
        (expired, disabled, or past the park budget) — the caller
        sheds it to the client instead."""
        cfg = self.config
        if not cfg.park or req.expired(now_ns):
            return False
        if req.first_parked_ns is None:
            req.first_parked_ns = now_ns
        elif now_ns - req.first_parked_ns >= cfg.max_park_ns:
            return False
        self._parked.append(req)
        self.parked += 1
        self._arm_replay()
        return True

    def _arm_replay(self) -> None:
        # one-shot timer, re-armed only while requests are parked: the
        # event heap must drain once all requests are terminal, so the
        # replay poller never sits in an infinite loop
        if self._replay_armed:
            return
        self._replay_armed = True
        proc = self.engine.process(self._replay(),
                                   name="frontend.router.replay")
        self.frontend._track(proc)

    def _replay(self):
        yield self.config.replay_interval_ns
        self._replay_armed = False
        frontend = self.frontend
        now = self.engine.now
        still_parked: List[Any] = []
        for req in self._parked:
            if req.expired(now):
                frontend._finish(req, "timed_out", "deadline-exceeded")
            elif self.breakers.allow(req.home, now):
                self.replayed += 1
                frontend.scheduler.enqueue(req)
            elif now - req.first_parked_ns >= self.config.max_park_ns:
                frontend._finish(req, "rejected", REASON_PARK_EXPIRED)
            else:
                still_parked.append(req)
        self._parked = still_parked
        if still_parked:
            self._arm_replay()

    # -- retry budget (runs in the session retry loop) -----------------------
    def note_first_attempt(self, req) -> None:
        self.budget.note_first_attempt(req.session.config.priority)

    def allow_retry(self, req) -> bool:
        return self.budget.try_spend(req.session.config.priority)

    # -- breaker signals -----------------------------------------------------
    def note_failure(self, req, now_ns: float) -> None:
        self.breakers.record_failure(req.home, now_ns)

    def note_success(self, req, now_ns: float) -> None:
        self.breakers.record_success(req.home, now_ns)


# -- the control-plane planner ----------------------------------------------

class ClusterRouterConfig:
    """Knobs for :class:`ClusterRetryRouter`."""

    def __init__(self, budget: Optional[RetryBudgetConfig] = None,
                 breaker: Optional[BreakerConfig] = None,
                 round_refill: float = 1.0,
                 max_epoch_refreshes: int = 4):
        self.budget = budget or RetryBudgetConfig(ratio=0.5, burst=16)
        self.breaker = breaker or BreakerConfig()
        #: tokens trickled back per :meth:`ClusterRetryRouter.pump`
        #: round so a long recovery cannot starve once a storm has
        #: passed; amplification stays bounded by the settle budget
        self.round_refill = round_refill
        self.max_epoch_refreshes = max_epoch_refreshes
        if round_refill < 0:
            raise FrontendError("round_refill must be >= 0",
                                round_refill=round_refill)
        if max_epoch_refreshes < 1:
            raise FrontendError("max_epoch_refreshes must be >= 1",
                                max_epoch_refreshes=max_epoch_refreshes)


class ClusterRetryRouter:
    """Plans a transaction stream onto an :class:`HACluster`.

    The client-visible contract: :meth:`route` every transaction once
    (tags must be sortable), :meth:`pump` (or :meth:`settle`) until
    :attr:`done`; every routed transaction then appears in
    :attr:`acked` exactly once, and :meth:`HACluster.reconcile`
    guarantees none was executed twice.

    Planning rules, in order:

    * **Stalled first.** A transaction that executed but missed its
      replication ack is *reconciled against the authoritative log*
      before any re-submit — a committed transaction is never
      double-applied.
    * **Breakers fail fast.** A partition whose submits keep bouncing
      (owner dead, not yet failed over) trips its breaker; further
      submits are skipped entirely until the cooldown admits probes.
    * **Retries are budgeted.** Re-attempts spend per-class tokens
      funded by first-attempt traffic (plus a per-round trickle), so
      retry amplification is bounded no matter how long the outage.
    * **Stale epochs re-home.** ``StaleEpochError`` refreshes the
      cached ``ownership_map()`` and re-submits to the current owner.
    * **Migrations queue-and-replay.** ``queued`` results park at the
      cluster; :meth:`pump` collects them from ``released`` after the
      re-own, and re-routes anything the cluster ``deferred``.
    * **Order is preserved.** Per-partition FIFO: a transaction never
      overtakes an earlier one bound for the same partition.
    * **Footprints pre-classify.** With a
      :class:`repro.analysis.footprint.FootprintIndex`, every routed
      spec is classified single-partition / single-node / cross-node
      *before* the first submit; a procedure whose pinned partitions
      are owned by a different node than its home is rejected with a
      typed error at :meth:`route` time — zero submit attempts, where
      the dynamic path would bounce and burn retry budget.
    """

    def __init__(self, cluster, config: Optional[ClusterRouterConfig] = None,
                 footprints=None):
        self.cluster = cluster
        self.config = config or ClusterRouterConfig()
        #: optional FootprintIndex-alike exposing ``summary(proc_id)``
        self.footprints = footprints
        self.budget = RetryBudget(self.config.budget)
        self.breakers = BreakerBank(self.config.breaker)
        self.epochs: Dict[int, int] = {
            p: epoch for p, (_owner, epoch)
            in sorted(cluster.ownership_map().items())}
        self.specs: Dict[Any, tuple] = {}       # tag -> (spec, layout)
        self.acked: Dict[Any, tuple] = {}       # tag -> (txn_id, outcome)
        self.pending: Dict[int, List[Any]] = {}  # partition -> ordered tags
        self.stalled: Set[Any] = set()
        self.queued: Set[Any] = set()
        self._seen: Set[Any] = set()
        # accounting
        self.attempts = 0
        self.reexecuted = 0
        self.stale_refreshes = 0
        self.rehomed = 0
        self.breaker_fast_fails = 0
        self.queued_total = 0
        self.planned_rejects = 0
        #: tag -> static routing verdict (when footprints are wired)
        self.static_routes: Dict[Any, str] = {}
        #: verdict -> count over everything routed
        self.static_counts: Dict[str, int] = {}

    # -- public surface ------------------------------------------------------
    def route(self, tag: Any, spec, layout) -> None:
        """Accept one transaction for delivery; submits immediately
        unless earlier work for the same partition is still pending.
        With footprints wired, a statically cross-node spec is rejected
        here — before any submit attempt."""
        if tag in self.specs:
            raise FrontendError("tag already routed", tag=tag)
        self._preclassify(tag, spec)
        self.specs[tag] = (spec, layout)
        self._collect()
        queue = self.pending.setdefault(spec.home, [])
        queue.append(tag)
        self._flush(spec.home)

    def pump(self) -> None:
        """One control-plane round: refill the budget trickle, collect
        router-released/deferred work, and flush every partition."""
        self.budget.deposit(self.config.round_refill)
        self._collect()
        for p in sorted(self.pending):
            self._flush(p)

    def settle(self, max_rounds: int, advance_ns: float) -> int:
        """Pump (advancing the cluster clock between rounds) until
        everything routed is acked; returns the rounds consumed.
        Raises :class:`FrontendError` on non-convergence."""
        for rounds in range(max_rounds):
            self.pump()
            if self.done:
                return rounds
            self.cluster.advance(advance_ns)
        self.pump()
        if self.done:
            return max_rounds
        missing = sorted(set(self.specs) - set(self.acked))
        raise FrontendError(
            "stream did not converge within the settle budget",
            missing=missing, rounds=max_rounds,
            pending={p: q for p, q in sorted(self.pending.items()) if q},
            breaker_states=self.breakers.states())

    @property
    def done(self) -> bool:
        return len(self.acked) == len(self.specs)

    @property
    def first_attempts(self) -> int:
        return len(self._seen)

    @property
    def amplification(self) -> float:
        """Submit attempts per routed transaction (1.0 = no retries)."""
        return self.attempts / len(self.specs) if self.specs else 0.0

    def refresh(self) -> None:
        """Re-cache the ownership map (the StaleEpochError response)."""
        for p, (_owner, epoch) in sorted(self.cluster.ownership_map().items()):
            if self.epochs.get(p) != epoch:
                self.rehomed += 1
            self.epochs[p] = epoch

    # -- internals -----------------------------------------------------------
    def _preclassify(self, tag: Any, spec) -> None:
        """Join the spec's procedure footprint with the current
        ownership map; reject statically cross-node work up front."""
        if self.footprints is None:
            return
        summary = self.footprints.summary(spec.proc_id)
        if summary is None:
            return
        owners = {p: owner for p, (owner, _epoch)
                  in self.cluster.ownership_map().items()}
        route = summary.classify(spec.home,
                                 node_of=lambda p: owners.get(p, -1))
        self.static_routes[tag] = route.verdict
        self.static_counts[route.verdict] = \
            self.static_counts.get(route.verdict, 0) + 1
        if route.verdict == "cross-node":
            self.planned_rejects += 1
            raise FrontendError(
                "procedure footprint pins partitions owned by a "
                "different node than its home; the submit could only "
                "bounce — re-home the stream or split the transaction",
                tag=tag, home=spec.home,
                partitions=sorted(route.partitions),
                nodes=sorted(route.nodes))

    def _collect(self) -> None:
        """Pull migration releases and deferred work back from the
        cluster router."""
        cluster = self.cluster
        for tag, res in list(cluster.released.items()):
            self.acked[tag] = (res.txn_id, res.outcome)
            self.queued.discard(tag)
            self.breakers.record_success(res.partition, cluster.now_ns)
            del cluster.released[tag]
        changed = set()
        while cluster.deferred:
            spec, _layout, tag = cluster.deferred.pop(0)
            self.queued.discard(tag)
            queue = self.pending.setdefault(spec.home, [])
            if tag not in queue:
                queue.append(tag)
                changed.add(spec.home)
            if cluster.attempt_of(tag) is not None:
                self.stalled.add(tag)
        for p in sorted(changed):
            self.pending[p].sort()

    def _flush(self, partition: int) -> None:
        queue = self.pending.get(partition, ())
        while queue:
            if not self._try(queue[0]):
                return
            queue.pop(0)

    def _try(self, tag: Any) -> bool:
        """One placement attempt; ``True`` = tag is acked or queued at
        the cluster (either way it has left ``pending``)."""
        cluster, cfg = self.cluster, self.config
        spec, layout = self.specs[tag]
        p = spec.home
        if tag in self.stalled:
            rc = cluster.reconcile(tag)
            if rc is not None:
                state, status = rc
                if state == "acked":
                    self.stalled.discard(tag)
                    self.acked[tag] = (cluster.attempt_of(tag)[1], status)
                    self.breakers.record_success(p, cluster.now_ns)
                    return True
                return False        # executed, replication still stuck
            self.stalled.discard(tag)   # no durable trace: re-execute
            self.reexecuted += 1
        if not self.breakers.allow(p, cluster.now_ns):
            self.breaker_fast_fails += 1
            return False
        if tag in self._seen and not self.budget.try_spend():
            return False
        first = tag not in self._seen
        self._seen.add(tag)
        if first:
            self.budget.note_first_attempt()
        for _ in range(cfg.max_epoch_refreshes):
            self.attempts += 1
            try:
                res = cluster.submit_spec(spec, layout,
                                          client_epoch=self.epochs.get(p),
                                          tag=tag)
            except StaleEpochError:
                self.stale_refreshes += 1
                self.refresh()
                continue
            except PartitionUnavailableError:
                self.breakers.record_failure(p, cluster.now_ns)
                return False
            except ReplicationStalledError:
                self.breakers.record_failure(p, cluster.now_ns)
                self.stalled.add(tag)
                return False
            if res.status == "queued":
                self.queued.add(tag)
                self.queued_total += 1
            else:
                self.acked[tag] = (res.txn_id, res.outcome)
                self.breakers.record_success(p, cluster.now_ns)
            return True
        raise FrontendError(
            "submit still fenced after repeated ownership refreshes",
            tag=tag, partition=p, epoch=self.epochs.get(p))
