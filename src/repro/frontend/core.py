"""The FrontEnd: the serving path every request now walks.

::

    session arrival ──► NIC (wire + bounded RX) ──► pump
                                                     │ admission control
                                                     ▼
                                  dispatch scheduler (WFQ / EDF, window)
                                                     │
                                                     ▼
                              BionicDB.submit ──► softcore batch former

Attach one FrontEnd to a :class:`~repro.core.system.BionicDB` or
:class:`~repro.cluster.system.BionicCluster`, create sessions, then
``run()``: the same discrete-event engine advances clients, the link,
the pump, the dispatchers and the chip on one timeline, and a
:class:`~repro.frontend.slo.FrontendReport` summarises the outcome.

Every generated request ends in exactly one terminal state —
``committed``, ``aborted``, ``rejected`` or ``timed_out``; if the
event heap drains with a request unresolved, ``run()`` raises
:class:`~repro.errors.StuckTransactionError` (the PR-1 machinery)
rather than letting the loss masquerade as a quiet run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..errors import (
    CrossNodeTransactionError, FrontendError, RetryableError,
    StuckTransactionError,
)
from ..mem.txnblock import TxnStatus
from .admission import (
    AdmissionConfig, AdmissionController, REASON_DEADLINE, REASON_RX_OVERFLOW,
)
from .nic import Nic, NicConfig
from .resilience import ResilienceConfig
from .router import RequestRouter
from .scheduler import DispatchScheduler, SchedulerConfig
from .session import ClientSession, Request, SessionConfig
from .slo import FrontendReport

__all__ = ["FrontendConfig", "FrontEnd"]


@dataclass
class FrontendConfig:
    nic: NicConfig = field(default_factory=NicConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: the overload-resilience layer (brownout, breakers, retry budget,
    #: re-home, park/replay); disabled by default — no router is built
    #: and the serving path is bit-identical to the plain front-end
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    @staticmethod
    def passthrough() -> "FrontendConfig":
        """A transparent front-end: infinite link, no admission, no
        dispatch window — requests reach the workers at their arrival
        instants, preserving the historical direct-submit behaviour
        (used by the open-loop client for API compatibility)."""
        return FrontendConfig(
            nic=NicConfig(bandwidth_gbps=None, propagation_ns=0.0,
                          rx_queue_depth=None, rx_process_ns=0.0),
            admission=AdmissionConfig(enabled=False),
            scheduler=SchedulerConfig(policy="fifo",
                                      max_inflight_per_worker=None),
        )


class FrontEnd:
    """The network front-end for one BionicDB (or cluster)."""

    def __init__(self, db, config: Optional[FrontendConfig] = None,
                 faults=None):
        self.db = db
        self.config = config or FrontendConfig()
        self.engine = db.engine
        #: optional repro.faults.FaultPlan threaded into the NIC
        self.faults = faults
        n_workers = getattr(db, "total_workers", None) or db.config.n_workers
        self.nic = Nic(self.engine, self.config.nic, stats=db.stats,
                       name="frontend.nic", faults=faults)
        self._dup_discarded = db.stats.counter("frontend.dup_discarded")
        self.admission = AdmissionController(self.engine,
                                             self.config.admission,
                                             stats=db.stats)
        self.scheduler = DispatchScheduler(
            self.engine, n_workers, self.config.scheduler,
            submit=self._submit, on_timeout=self._timeout, stats=db.stats)
        self.router = (RequestRouter(self)
                       if self.config.resilience.enabled else None)
        self.sessions: List[ClientSession] = []
        self._by_txn = {}              # txn_id -> Request (in the chip)
        self._procs = list(self.scheduler.procs)
        self._start_ns = self.engine.now
        self._attached = True
        db.attach_frontend(self)
        pump = self.engine.process(self._pump(), name="frontend.pump")
        self._track(pump)

    # -- sessions -----------------------------------------------------------
    def session(self, factory, config: Optional[SessionConfig] = None,
                rng=None, **kwargs) -> ClientSession:
        """Open a client session.

        ``factory(i) -> (block, home_worker)`` builds request *i* at its
        arrival instant.  Pass a :class:`SessionConfig`, or its fields
        as keyword arguments.  ``rng`` (a seeded ``random.Random``)
        replaces the session's private RNG so several sessions — and
        their retry-backoff jitter — reproduce from one workload seed.
        """
        if not self._attached:
            raise FrontendError("front-end is detached from its system")
        if config is None:
            config = SessionConfig(**kwargs)
        elif kwargs:
            raise FrontendError("pass a SessionConfig or kwargs, not both")
        sess = ClientSession(self, len(self.sessions), config, factory,
                             rng=rng)
        self.sessions.append(sess)
        self.scheduler.register_session(sess.id, config.weight)
        return sess

    def _track(self, proc) -> None:
        self._procs.append(proc)

    # -- the serving path ----------------------------------------------------
    def _launch(self, req: Request) -> None:
        """Open-loop delivery: runs independently of the arrival clock."""
        proc = self.engine.process(
            self._deliver(req),
            name=f"frontend.deliver.{req.session.config.name}.{req.index}")
        self._track(proc)

    def _deliver(self, req: Request):
        """Drive one request to a terminal outcome, retrying sheds."""
        cfg = req.session.config
        if self.router is not None:
            self.router.note_first_attempt(req)
        while True:
            ok = yield from self.nic.transmit(req)
            if ok:
                yield req.done_event
            else:
                self._finish(req, "rejected", REASON_RX_OVERFLOW)
            if (req.outcome == "rejected"
                    and req.attempts < cfg.max_retries):
                if (self.router is not None
                        and not self.router.allow_retry(req)):
                    # budget exhausted: go terminal with the last shed
                    # reason rather than amplify the storm
                    req.session.stats.retries_denied += 1
                    break
                req.attempts += 1
                req.session.stats.retries += 1
                backoff = cfg.retry_backoff_ns * (2 ** (req.attempts - 1))
                if cfg.retry_jitter > 0:
                    backoff *= 1.0 - cfg.retry_jitter * req.session._rng.random()
                if backoff > 0:
                    yield backoff
                req.reset_for_retry(self.engine)
                continue
            break
        req.session._record_terminal(req)

    def _pump(self):
        """Drain the NIC RX queue: dedup, admission control, dispatch."""
        rx_ns = self.nic.config.rx_process_ns
        while True:
            req = yield self.nic.rx.get()
            if rx_ns > 0:
                yield rx_ns
            if req.in_system or req.outcome is not None:
                # an injected duplicate of an attempt already accepted
                # (or already terminal) — dedup as a host stack would
                self._dup_discarded.add()
                continue
            req.in_system = True
            if req.expired(self.engine.now):
                self._finish(req, "timed_out", REASON_DEADLINE)
                continue
            if self.router is not None:
                reason = self.router.gate(req, self.engine.now)
                if reason is not None:
                    self._finish(req, "rejected", reason)
                    continue
                self.router.plan(req)
            reason = self.admission.check(self.scheduler.backlog)
            if reason is not None:
                self._finish(req, "rejected", reason)
                continue
            self.scheduler.enqueue(req)

    def _submit(self, req: Request) -> None:
        self._by_txn[req.block.txn_id] = req
        try:
            self.db.submit(req.block, req.home)
        except CrossNodeTransactionError as exc:
            # the block lives in another node's DRAM: with a router,
            # re-plan onto the true home lane; without one, propagate —
            # this is a mis-wired factory, not a transient
            del self._by_txn[req.block.txn_id]
            self.scheduler.note_done(req.home)
            if self.router is not None and self.router.rehome(req, exc):
                return
            raise
        except RetryableError as exc:
            # a transient cluster condition (stale epoch, owner failing
            # over, replication lag): the request was not executed, so
            # map it to the ``rejected`` terminal outcome — the session
            # retry-with-backoff loop already knows how to drive that
            del self._by_txn[req.block.txn_id]
            self.scheduler.note_done(req.home)
            if self.router is not None:
                now = self.engine.now
                self.router.note_failure(req, now)
                if self.router.park(req, now):
                    return      # held for replay once the partition heals
            self._finish(req, "rejected", f"retryable:{type(exc).__name__}")

    def _timeout(self, req: Request) -> None:
        self._finish(req, "timed_out", REASON_DEADLINE)

    def _finish(self, req: Request, outcome: str,
                reason: Optional[str] = None) -> None:
        """Shed terminal states (rejected / timed out): stamp the block
        and wake whoever is waiting on the request."""
        req.outcome = outcome
        req.reason = reason
        header = req.block.header
        header.status = (TxnStatus.REJECTED if outcome == "rejected"
                         else TxnStatus.TIMED_OUT)
        header.abort_reason = reason
        req.block.done_at_ns = self.engine.now
        req.done_event.succeed(outcome)

    # -- completion from the chip -------------------------------------------
    def _note_done(self, block) -> None:
        req = self._by_txn.pop(block.txn_id, None)
        if req is None:
            return    # not front-end traffic (direct submit)
        self.scheduler.note_done(req.home)
        if self.router is not None:
            self.router.note_success(req, self.engine.now)
        req.outcome = ("committed"
                       if block.header.status is TxnStatus.COMMITTED
                       else "aborted")
        req.reason = block.header.abort_reason
        req.done_event.succeed(req.outcome)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> FrontendReport:
        """Advance the whole machine, then summarise the serving path."""
        if not self._attached:
            raise FrontendError("front-end is detached from its system")
        run_kwargs = {"until": until}
        if max_events is not None:
            run_kwargs["max_events"] = max_events
        try:
            self.db.run(**run_kwargs)
        except TypeError:
            # BionicCluster.run has no max_events watchdog parameter
            self.db.run(until=until)
        self._check_processes()
        drained = self.engine.idle
        if drained:
            stuck = {f"{s.config.name}/{req.index}": req.block.header.status.value
                     for s in self.sessions for req in s.requests
                     if req.outcome is None}
            if stuck:
                raise StuckTransactionError(
                    f"{len(stuck)} front-end request(s) never reached a "
                    f"terminal outcome after the event heap drained",
                    stuck=stuck)
        return self.report()

    def _check_processes(self) -> None:
        """Surface any exception that killed a front-end process."""
        for proc in self._procs:
            if proc.triggered and proc._exc is not None:
                raise proc._exc

    def report(self) -> FrontendReport:
        report = FrontendReport(
            elapsed_ns=self.engine.now - self._start_ns,
            sessions=[s.stats for s in self.sessions],
            nic_delivered=self.nic.delivered,
            nic_dropped=self.nic.dropped,
            admission_shed={
                "rate": self.admission._shed_rate.value,
                "backlog": self.admission._shed_backlog.value,
            },
            dispatched=self.scheduler._dispatched.value,
        )
        router = self.router
        if router is not None:
            report.breaker_transitions = router.breakers.transitions()
            report.retry_budget = router.budget.totals()
            report.brownout_shed = dict(
                sorted(router.brownout.shed_counts.items()))
            report.rehomed = router.rehomed
            report.parked = router.parked
            report.replayed = router.replayed
            report.planned = router.planned
        return report

    # -- lifecycle -----------------------------------------------------------
    def detach(self) -> None:
        """Release the attach point so another front-end can take over."""
        if self._attached:
            self.db.detach_frontend(self)
            self._attached = False
