"""SLO tracking: goodput and latency percentiles per tenant.

Built on :class:`repro.sim.stats.PercentileHistogram` (log-bucketed
p50/p95/p99 in O(buckets) memory), this module turns the front-end's
raw outcomes into the numbers an operator actually watches:

* **offered / committed / aborted / rejected / timed-out** — an exact
  conservation law: every generated request ends in exactly one of the
  four terminal outcomes, checked by :attr:`FrontendReport.conserved`.
* **goodput** — commits that met their deadline (all commits when a
  session declares no deadline).  Under overload this is the curve
  that must stay flat while naive throughput collapses into timeouts.
* **latency percentiles** — end-to-end, from block creation at the
  client through NIC, admission, dispatch queueing and execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.stats import PercentileHistogram, nearest_rank
from .resilience import REASON_BREAKER, REASON_BROWNOUT

__all__ = ["SessionStats", "FrontendReport"]


@dataclass
class SessionStats:
    """Per-session serving-path accounting."""

    name: str
    priority: int = 0         # brownout/budget class (0 = most important)
    offered: int = 0          # requests generated
    committed: int = 0
    aborted: int = 0
    rejected: int = 0         # shed: NIC overflow / rate limit / backlog
    timed_out: int = 0        # deadline expired while queued
    retries: int = 0          # re-submissions after a shed (not new offers)
    #: rejections whose *final* shed reason was brownout / an open
    #: breaker — subsets of ``rejected``, for exact per-class SLO
    #: accounting under overload
    rejected_brownout: int = 0
    rejected_breaker: int = 0
    #: retries the per-class retry budget refused (the request then
    #: went terminal with its last shed reason)
    retries_denied: int = 0
    deadline_met: int = 0     # commits inside their deadline
    latency: PercentileHistogram = field(
        default_factory=lambda: PercentileHistogram("latency_ns"))
    #: exact latency samples (committed requests), for small-run exact
    #: percentiles and the open-loop client's historical report shape
    latencies_ns: List[float] = field(default_factory=list)

    def record(self, req) -> None:
        """Fold one terminal request into the tallies."""
        outcome = req.outcome
        if outcome == "committed":
            self.committed += 1
            done = req.block.done_at_ns
            latency = done - req.created_at_ns
            self.latency.observe(latency)
            self.latencies_ns.append(latency)
            if req.deadline_at_ns is None or done <= req.deadline_at_ns:
                self.deadline_met += 1
        elif outcome == "aborted":
            self.aborted += 1
        elif outcome == "rejected":
            self.rejected += 1
            if req.reason == REASON_BROWNOUT:
                self.rejected_brownout += 1
            elif req.reason == REASON_BREAKER:
                self.rejected_breaker += 1
        elif outcome == "timed_out":
            self.timed_out += 1
        else:  # pragma: no cover - guarded by FrontEnd.run()
            raise ValueError(f"non-terminal outcome {outcome!r}")

    @property
    def resolved(self) -> int:
        return self.committed + self.aborted + self.rejected + self.timed_out

    @property
    def conserved(self) -> bool:
        return self.resolved == self.offered

    def percentile_ns(self, p: float) -> float:
        """Exact nearest-rank percentile of committed latencies."""
        return nearest_rank(sorted(self.latencies_ns), p)


@dataclass
class FrontendReport:
    """The serving-path summary a FrontEnd.run() returns."""

    elapsed_ns: float
    sessions: List[SessionStats]
    nic_delivered: int = 0
    nic_dropped: int = 0
    admission_shed: Dict[str, int] = field(default_factory=dict)
    dispatched: int = 0
    #: breaker open / half-open / re-close transition counts (empty
    #: when the resilience layer is disabled)
    breaker_transitions: Dict[str, int] = field(default_factory=dict)
    #: per-class retry-budget grants/denials
    retry_budget: Dict[str, int] = field(default_factory=dict)
    #: priority class -> requests shed by brownout (attempt-level; the
    #: terminal per-class view lives in :meth:`by_class`)
    brownout_shed: Dict[int, int] = field(default_factory=dict)
    #: cross-node submits re-planned onto their true home lane
    rehomed: int = 0
    #: requests parked on a retryable cluster error / replayed after
    parked: int = 0
    replayed: int = 0
    #: requests moved to their home node by static footprint planning
    #: *before* submit (the bounce the rehome path re-plans from never
    #: happened)
    planned: int = 0

    # -- totals -------------------------------------------------------------
    def _sum(self, attr: str) -> int:
        return sum(getattr(s, attr) for s in self.sessions)

    @property
    def offered(self) -> int:
        return self._sum("offered")

    @property
    def committed(self) -> int:
        return self._sum("committed")

    @property
    def aborted(self) -> int:
        return self._sum("aborted")

    @property
    def rejected(self) -> int:
        return self._sum("rejected")

    @property
    def timed_out(self) -> int:
        return self._sum("timed_out")

    @property
    def deadline_met(self) -> int:
        return self._sum("deadline_met")

    @property
    def conserved(self) -> bool:
        """rejected + timed_out + committed + aborted == offered."""
        return all(s.conserved for s in self.sessions)

    def by_class(self) -> Dict[int, Dict[str, int]]:
        """Terminal-state breakdown per priority class — the exact
        per-class SLO accounting brownout shedding is judged by."""
        fields = ("offered", "committed", "aborted", "rejected",
                  "timed_out", "rejected_brownout", "rejected_breaker",
                  "retries", "retries_denied", "deadline_met")
        out: Dict[int, Dict[str, int]] = {}
        for s in self.sessions:
            cls = out.setdefault(s.priority, {f: 0 for f in fields})
            for f in fields:
                cls[f] += getattr(s, f)
        return dict(sorted(out.items()))

    # -- rates --------------------------------------------------------------
    @property
    def offered_tps(self) -> float:
        return self.offered / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0

    @property
    def throughput_tps(self) -> float:
        return self.committed / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0

    @property
    def goodput_tps(self) -> float:
        """Commits that met their deadline, per second."""
        return self.deadline_met / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0

    # -- latency ------------------------------------------------------------
    def percentile_ns(self, p: float) -> float:
        """Exact nearest-rank percentile over all sessions' commits."""
        merged: List[float] = []
        for s in self.sessions:
            merged.extend(s.latencies_ns)
        return nearest_rank(sorted(merged), p)

    @property
    def mean_latency_ns(self) -> float:
        total = sum(s.latency.total for s in self.sessions)
        count = sum(s.latency.count for s in self.sessions)
        return total / count if count else 0.0

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        lines = ["front-end report " + "=" * 55]
        lines.append(
            f"  elapsed {self.elapsed_ns / 1e6:10.3f} ms   "
            f"offered {self.offered}  committed {self.committed}  "
            f"aborted {self.aborted}  rejected {self.rejected}  "
            f"timed-out {self.timed_out}")
        lines.append(
            f"  offered {self.offered_tps / 1e3:8.1f} kTps   "
            f"throughput {self.throughput_tps / 1e3:8.1f} kTps   "
            f"goodput {self.goodput_tps / 1e3:8.1f} kTps")
        if self.committed:
            lines.append(
                f"  latency p50 {self.percentile_ns(50) / 1e3:9.1f} us   "
                f"p95 {self.percentile_ns(95) / 1e3:9.1f} us   "
                f"p99 {self.percentile_ns(99) / 1e3:9.1f} us")
        lines.append(
            f"  nic delivered {self.nic_delivered}  dropped {self.nic_dropped}"
            f"   admission shed {self.admission_shed}   "
            f"dispatched {self.dispatched}")
        if self.breaker_transitions or self.retry_budget or self.rehomed \
                or self.parked or self.brownout_shed or self.planned:
            lines.append(
                f"  breakers {self.breaker_transitions}  "
                f"retry-budget {self.retry_budget}  "
                f"brownout-shed {self.brownout_shed}  "
                f"planned {self.planned}  "
                f"rehomed {self.rehomed}  parked {self.parked}  "
                f"replayed {self.replayed}")
            for cls, row in self.by_class().items():
                lines.append(
                    f"  class {cls}: offered {row['offered']}  "
                    f"committed {row['committed']}  "
                    f"rejected {row['rejected']} "
                    f"(brownout {row['rejected_brownout']}, "
                    f"breaker {row['rejected_breaker']})  "
                    f"timed-out {row['timed_out']}  "
                    f"retries {row['retries']} "
                    f"(denied {row['retries_denied']})")
        for s in self.sessions:
            lines.append(
                f"  [{s.name}] offered {s.offered}  committed {s.committed}"
                f"  aborted {s.aborted}  rejected {s.rejected}"
                f"  timed-out {s.timed_out}  retries {s.retries}"
                f"  deadline-met {s.deadline_met}")
        return "\n".join(lines)

    def show(self) -> "FrontendReport":
        print()
        print(self.render())
        return self
