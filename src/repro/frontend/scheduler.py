"""Dispatch scheduling: from admitted requests to home workers.

Admitted requests queue here per home worker.  Each worker has a
dispatch loop that keeps at most ``max_inflight_per_worker`` blocks
inside the chip (submitted but not finished) — the window that feeds
the softcore's §4.5 batch former without recreating today's unbounded
teleport.  Two orthogonal decisions pick the next request:

* **Across sessions** — weighted-fair queuing (stride scheduling): each
  session owns a virtual clock advanced by ``1/weight`` per dispatch;
  the ready session with the smallest clock goes next, so a weight-2
  tenant gets twice the dispatch share of a weight-1 tenant when both
  are backlogged, and an idle session never banks credit (its clock is
  snapped forward on re-arrival).

* **Within/instead of fairness** — with ``policy="edf"`` the dispatcher
  ignores virtual clocks and picks the queued request with the
  earliest absolute deadline (requests without deadlines sort last),
  the classic earliest-deadline-first rule.

A request whose deadline has already passed when it is popped is shed
as ``TIMED_OUT`` instead of being submitted — executing it would only
steal service from requests that can still meet their SLO.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..errors import ConfigError
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo, TokenPool

__all__ = ["SchedulerConfig", "DispatchScheduler"]


@dataclass
class SchedulerConfig:
    #: "fifo" = weighted-fair across sessions, FIFO within a session;
    #: "edf" = earliest-deadline-first across everything queued
    policy: str = "fifo"
    #: dispatch window per worker; ``None`` = unlimited (pass-through)
    max_inflight_per_worker: Optional[int] = 8

    def __post_init__(self):
        if self.policy not in ("fifo", "edf"):
            raise ConfigError(f"unknown dispatch policy {self.policy!r}")
        if (self.max_inflight_per_worker is not None
                and self.max_inflight_per_worker < 1):
            raise ConfigError(
                "max_inflight_per_worker must be >= 1 (or None); a "
                "zero-wide dispatch window would never submit anything",
                max_inflight_per_worker=self.max_inflight_per_worker)


class _Lane:
    """Per-worker dispatch state: per-session queues + a request signal."""

    __slots__ = ("worker", "queues", "signal", "window")

    def __init__(self, engine: Engine, worker: int,
                 window: Optional[int]):
        self.worker = worker
        self.queues: Dict[int, Deque] = {}
        self.signal = Fifo(engine, name=f"frontend.lane{worker}")
        self.window = (TokenPool(engine, window,
                                 name=f"frontend.lane{worker}.window")
                       if window is not None else None)


class DispatchScheduler:
    """Routes admitted requests to home workers under the chosen policy."""

    def __init__(self, engine: Engine, n_workers: int,
                 config: Optional[SchedulerConfig] = None,
                 submit: Callable = None, on_timeout: Callable = None,
                 stats: Optional[StatsRegistry] = None):
        if n_workers < 1:
            raise ConfigError("n_workers must be >= 1", n_workers=n_workers)
        self.engine = engine
        self.config = config or SchedulerConfig()
        self.stats = stats or StatsRegistry()
        self._submit = submit
        self._on_timeout = on_timeout
        self.backlog = 0               # admitted, not yet dispatched
        self._seq = 0                  # FIFO tie-break / within-session order
        self._vtime: Dict[int, float] = {}
        self._weight: Dict[int, float] = {}
        self._global_v = 0.0
        self._dispatched = self.stats.counter("frontend.dispatched")
        self._timed_out = self.stats.counter("frontend.timed_out")
        self._lanes: List[_Lane] = [
            _Lane(engine, w, self.config.max_inflight_per_worker)
            for w in range(n_workers)
        ]
        self.procs = [
            engine.process(self._lane_loop(lane),
                           name=f"frontend.dispatch.w{lane.worker}")
            for lane in self._lanes
        ]

    # -- session registry ---------------------------------------------------
    def register_session(self, session_id: int, weight: float) -> None:
        self._weight[session_id] = weight
        self._vtime[session_id] = self._global_v

    # -- enqueue ------------------------------------------------------------
    def enqueue(self, request) -> None:
        lane = self._lanes[request.home]
        sid = request.session.id
        dq = lane.queues.get(sid)
        if dq is None:
            dq = lane.queues[sid] = deque()
        if not dq:
            # re-arriving after idle: no banked credit
            self._vtime[sid] = max(self._vtime.get(sid, 0.0), self._global_v)
        self._seq += 1
        request.seq = self._seq
        dq.append(request)
        self.backlog += 1
        lane.signal.put(None)

    # -- selection ----------------------------------------------------------
    def _select(self, lane: _Lane):
        if self.config.policy == "edf":
            # earliest absolute deadline over EVERYTHING queued on this
            # lane, not just session heads — a late-queued urgent request
            # must overtake its own session's earlier arrivals too
            sid, dq, pos, best = None, None, None, None
            for s, q in lane.queues.items():
                for i, r in enumerate(q):
                    key = (r.deadline_at_ns
                           if r.deadline_at_ns is not None else float("inf"),
                           r.seq)
                    if best is None or key < best:
                        best, sid, dq, pos = key, s, q, i
            request = dq[pos]
            del dq[pos]
        else:
            heads = [(s, q) for s, q in lane.queues.items() if q]
            sid, dq = min(heads, key=lambda item: (self._vtime[item[0]],
                                                   item[1][0].seq))
            request = dq.popleft()
        self._global_v = self._vtime[sid]
        self._vtime[sid] += 1.0 / self._weight.get(sid, 1.0)
        return request

    # -- per-worker loop ----------------------------------------------------
    def _lane_loop(self, lane: _Lane):
        while True:
            yield lane.signal.get()
            request = self._select(lane)
            self.backlog -= 1
            if request.expired(self.engine.now):
                self._timed_out.add()
                self._on_timeout(request)
                continue
            if lane.window is not None:
                yield lane.window.acquire()
                # the wait for a window slot may have burned the deadline
                if request.expired(self.engine.now):
                    lane.window.release()
                    self._timed_out.add()
                    self._on_timeout(request)
                    continue
            self._dispatched.add()
            self._submit(request)

    # -- completion ---------------------------------------------------------
    def note_done(self, worker: int) -> None:
        lane = self._lanes[worker]
        if lane.window is not None:
            lane.window.release()
