"""Admission control: decide at the door, not in the queue.

Two complementary policies, applied by the front-end pump to every
packet the NIC delivers:

* **Token bucket** — a sustained-rate limit with a burst allowance.
  Tokens accrue at ``rate_tps`` and cap at ``burst``; a request that
  finds no token is shed with outcome ``REJECTED`` (reason
  ``"rate-limit"``).  This bounds *offered* work to what the machine
  can retire, which is what keeps latency on the flat part of the
  hockey stick under overload.

* **Queue-depth bound** — an upper bound on the dispatch backlog
  (requests admitted but not yet handed to a worker).  Once the
  backlog exceeds what the SLO's deadline can absorb,
  admitting more requests only manufactures timeouts; shedding them
  immediately returns a fast, honest ``REJECTED`` (reason
  ``"backlog-full"``) the client can retry against.

Shedding is an explicit *outcome*, never an exception: clients see
``TxnStatus.REJECTED`` on the block and may retry with backoff
(:class:`~repro.frontend.session.SessionConfig`).  Misconfiguration
(zero capacity, negative burst) is an exception — a clean
:class:`~repro.errors.ConfigError` at construction rather than a hang
at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry

__all__ = ["AdmissionConfig", "TokenBucket", "AdmissionController",
           "REASON_RATE", "REASON_BACKLOG", "REASON_RX_OVERFLOW",
           "REASON_DEADLINE"]

#: rejection / timeout reasons surfaced on ``BlockHeader.abort_reason``
REASON_RATE = "rate-limit"
REASON_BACKLOG = "backlog-full"
REASON_RX_OVERFLOW = "rx-overflow"
REASON_DEADLINE = "deadline-exceeded"


@dataclass
class AdmissionConfig:
    #: master switch; disabled = every delivered packet is admitted
    enabled: bool = True
    #: sustained admission rate (txns/s); ``None`` = no rate limit
    rate_tps: Optional[float] = None
    #: token bucket depth (burst allowance), in requests
    burst: int = 32
    #: bound on the dispatch backlog; ``None`` = unbounded
    max_backlog: Optional[int] = None

    def __post_init__(self):
        if self.rate_tps is not None and self.rate_tps <= 0:
            raise ConfigError(
                "admission rate_tps must be positive (or None); a "
                "zero-capacity bucket would reject forever",
                rate_tps=self.rate_tps)
        if self.burst < 1:
            raise ConfigError("burst must be >= 1", burst=self.burst)
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ConfigError("max_backlog must be >= 1 (or None)",
                              max_backlog=self.max_backlog)


class TokenBucket:
    """Continuous-refill token bucket over simulated time."""

    def __init__(self, engine: Engine, rate_tps: float, burst: int):
        if rate_tps <= 0:
            raise ConfigError("token bucket rate must be positive",
                              rate_tps=rate_tps)
        if burst < 1:
            raise ConfigError("token bucket burst must be >= 1", burst=burst)
        self.engine = engine
        self.rate_tps = rate_tps
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_ns = engine.now

    def _refill(self) -> None:
        now = self.engine.now
        self.tokens = min(self.burst,
                          self.tokens + (now - self._last_ns) * 1e-9
                          * self.rate_tps)
        self._last_ns = now

    def try_take(self) -> bool:
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Applies the configured policies; returns a shed reason or None."""

    def __init__(self, engine: Engine, config: Optional[AdmissionConfig] = None,
                 stats: Optional[StatsRegistry] = None,
                 name: str = "frontend.admission"):
        self.engine = engine
        self.config = config or AdmissionConfig()
        self.stats = stats or StatsRegistry()
        cfg = self.config
        self._bucket = (TokenBucket(engine, cfg.rate_tps, cfg.burst)
                        if cfg.enabled and cfg.rate_tps is not None else None)
        self._admitted = self.stats.counter(f"{name}.admitted")
        self._shed_rate = self.stats.counter(f"{name}.shed.rate")
        self._shed_backlog = self.stats.counter(f"{name}.shed.backlog")

    @property
    def admitted(self) -> int:
        return self._admitted.value

    @property
    def shed(self) -> int:
        return self._shed_rate.value + self._shed_backlog.value

    def check(self, backlog: int) -> Optional[str]:
        """Admit (None) or return the shed reason.

        The backlog bound is checked before the bucket so a rejected
        request never consumes a token another could have used.
        """
        cfg = self.config
        if not cfg.enabled:
            self._admitted.add()
            return None
        if cfg.max_backlog is not None and backlog >= cfg.max_backlog:
            self._shed_backlog.add()
            return REASON_BACKLOG
        if self._bucket is not None and not self._bucket.try_take():
            self._shed_rate.add()
            return REASON_RATE
        self._admitted.add()
        return None
