"""The network front-end: NIC, sessions, admission, dispatch, SLOs.

The serving stack the paper defers ("ideally, remote clients should
submit transaction blocks through network cards", §5.1): all traffic
can now enter a BionicDB or BionicCluster through a simulated link
with admission control, multi-tenant fair queuing, deadline
scheduling and SLO observability.  See ``docs/frontend.md``.
"""

from .admission import (
    AdmissionConfig, AdmissionController, TokenBucket,
    REASON_BACKLOG, REASON_DEADLINE, REASON_RATE, REASON_RX_OVERFLOW,
)
from .core import FrontEnd, FrontendConfig
from .nic import Nic, NicConfig
from .resilience import (
    BreakerBank, BreakerConfig, BrownoutConfig, BrownoutController,
    CircuitBreaker, ResilienceConfig, RetryBudget, RetryBudgetConfig,
    REASON_BREAKER, REASON_BROWNOUT, REASON_PARK_EXPIRED,
    REASON_RETRY_BUDGET,
)
from .router import ClusterRetryRouter, ClusterRouterConfig, RequestRouter
from .scheduler import DispatchScheduler, SchedulerConfig
from .session import ClientSession, Request, SessionConfig
from .slo import FrontendReport, SessionStats

__all__ = [
    "FrontEnd", "FrontendConfig",
    "Nic", "NicConfig",
    "AdmissionConfig", "AdmissionController", "TokenBucket",
    "DispatchScheduler", "SchedulerConfig",
    "ClientSession", "Request", "SessionConfig",
    "FrontendReport", "SessionStats",
    "ResilienceConfig", "RetryBudget", "RetryBudgetConfig",
    "CircuitBreaker", "BreakerBank", "BreakerConfig",
    "BrownoutController", "BrownoutConfig",
    "RequestRouter", "ClusterRetryRouter", "ClusterRouterConfig",
    "REASON_BACKLOG", "REASON_DEADLINE", "REASON_RATE", "REASON_RX_OVERFLOW",
    "REASON_BROWNOUT", "REASON_BREAKER", "REASON_RETRY_BUDGET",
    "REASON_PARK_EXPIRED",
]
