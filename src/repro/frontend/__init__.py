"""The network front-end: NIC, sessions, admission, dispatch, SLOs.

The serving stack the paper defers ("ideally, remote clients should
submit transaction blocks through network cards", §5.1): all traffic
can now enter a BionicDB or BionicCluster through a simulated link
with admission control, multi-tenant fair queuing, deadline
scheduling and SLO observability.  See ``docs/frontend.md``.
"""

from .admission import (
    AdmissionConfig, AdmissionController, TokenBucket,
    REASON_BACKLOG, REASON_DEADLINE, REASON_RATE, REASON_RX_OVERFLOW,
)
from .core import FrontEnd, FrontendConfig
from .nic import Nic, NicConfig
from .scheduler import DispatchScheduler, SchedulerConfig
from .session import ClientSession, Request, SessionConfig
from .slo import FrontendReport, SessionStats

__all__ = [
    "FrontEnd", "FrontendConfig",
    "Nic", "NicConfig",
    "AdmissionConfig", "AdmissionController", "TokenBucket",
    "DispatchScheduler", "SchedulerConfig",
    "ClientSession", "Request", "SessionConfig",
    "FrontendReport", "SessionStats",
    "REASON_BACKLOG", "REASON_DEADLINE", "REASON_RATE", "REASON_RX_OVERFLOW",
]
