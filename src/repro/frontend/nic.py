"""NIC / link model: how transaction blocks physically reach the chip.

The paper measures saturated throughput from pre-populated transaction
blocks and defers the serving path: "ideally, remote clients should
submit transaction blocks through network cards" (§5.1).  This module
is that network card.  A :class:`Nic` charges simulated time for every
block that enters the system — serialisation on a shared full-duplex
link of configurable bandwidth, a per-packet propagation latency, and
a *bounded* RX queue drained at a per-packet processing rate.  When
arrivals outpace RX processing the queue fills and the NIC sheds load
by dropping packets (drop-tail), exactly the behaviour today's free
teleport into ``BionicDB.submit`` cannot express.

Sizes are taken from the block layout (one cell ≈ one 64-byte line)
unless the config pins a fixed packet size.  Only the parts a client
actually ships cross the wire — the header cell and the input cells;
the output, scratch, undo and scan areas are allocated chip-side and
never serialise onto the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo

__all__ = ["NicConfig", "Nic"]


@dataclass
class NicConfig:
    #: shared-link bandwidth; ``None`` models an infinitely fast link
    #: (no serialisation delay) — the pass-through used to preserve the
    #: historical open-loop client behaviour
    bandwidth_gbps: Optional[float] = 40.0
    #: one-way per-packet latency (wire + PHY + DMA), ns
    propagation_ns: float = 500.0
    #: bounded RX descriptor ring; ``None`` = unbounded (never drops)
    rx_queue_depth: Optional[int] = 256
    #: per-packet host-side processing cost when draining RX, ns
    rx_process_ns: float = 40.0
    #: fixed packet size; ``None`` derives it from the block layout
    packet_bytes: Optional[int] = None
    #: cell-to-wire conversion when deriving packet size from a layout
    bytes_per_cell: int = 64

    def __post_init__(self):
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth_gbps must be positive (or None)",
                              bandwidth_gbps=self.bandwidth_gbps)
        if self.propagation_ns < 0:
            raise ConfigError("propagation_ns must be >= 0",
                              propagation_ns=self.propagation_ns)
        if self.rx_queue_depth is not None and self.rx_queue_depth < 1:
            raise ConfigError("rx_queue_depth must be >= 1 (or None)",
                              rx_queue_depth=self.rx_queue_depth)
        if self.rx_process_ns < 0:
            raise ConfigError("rx_process_ns must be >= 0",
                              rx_process_ns=self.rx_process_ns)
        if self.packet_bytes is not None and self.packet_bytes < 1:
            raise ConfigError("packet_bytes must be >= 1 (or None)",
                              packet_bytes=self.packet_bytes)
        if self.bytes_per_cell < 1:
            raise ConfigError("bytes_per_cell must be >= 1",
                              bytes_per_cell=self.bytes_per_cell)


class Nic:
    """The ingress link: serialisation, propagation, bounded RX queue.

    ``transmit(request)`` is a generator the front-end runs as (or
    inside) a process; it charges wire time and either lands the
    request in ``rx`` (returning True) or drops it when the RX ring is
    full (returning False).  The front-end pump drains ``rx`` at
    ``rx_process_ns`` per packet.
    """

    def __init__(self, engine: Engine, config: Optional[NicConfig] = None,
                 stats: Optional[StatsRegistry] = None, name: str = "nic",
                 faults=None):
        self.engine = engine
        self.config = config or NicConfig()
        self.stats = stats or StatsRegistry()
        self.name = name
        #: optional repro.faults.FaultPlan; None = perfect link
        self.faults = faults
        self.rx: Fifo = Fifo(engine, name=f"{name}.rx")
        self._busy_until = 0.0   # when the shared wire next idles
        self._delivered = self.stats.counter(f"{name}.delivered")
        self._dropped = self.stats.counter(f"{name}.rx_dropped")
        self._bytes = self.stats.counter(f"{name}.bytes")
        self._fault_lost = self.stats.counter(f"{name}.fault_lost")
        self._fault_corrupted = self.stats.counter(f"{name}.fault_corrupted")
        self._fault_duplicated = self.stats.counter(f"{name}.fault_duplicated")

    @property
    def delivered(self) -> int:
        return self._delivered.value

    @property
    def dropped(self) -> int:
        return self._dropped.value

    def packet_bytes(self, request) -> int:
        """Wire size of one request: header + input cells.

        A client ships ``proc_id`` plus the inputs; the output, scratch,
        undo and scan areas of the transaction block are chip-side
        allocations that never cross the link.
        """
        cfg = self.config
        if cfg.packet_bytes is not None:
            return cfg.packet_bytes
        layout = request.block.layout
        return (1 + layout.n_inputs) * cfg.bytes_per_cell

    def wire_ns(self, size_bytes: int) -> float:
        """Serialisation time for one packet on the shared link."""
        if self.config.bandwidth_gbps is None:
            return 0.0
        # bits / (Gbit/s) == ns
        return size_bytes * 8.0 / self.config.bandwidth_gbps

    def transmit(self, request):
        """Deliver one request over the link; yields simulated time.

        Returns True when the request landed in the RX queue, False
        when the packet was lost — bounded ring full, or an injected
        wire loss / in-flight corruption (the RX checksum discards a
        damaged packet, so both look the same to the sender).

        An injected duplication delivers the packet twice; the
        front-end pump detects and discards the extra copy, as a host
        network stack dedups retransmits.
        """
        cfg = self.config
        size = self.packet_bytes(request)
        self._bytes.add(size)
        now = self.engine.now
        start = max(now, self._busy_until)        # wait for the shared wire
        self._busy_until = start + self.wire_ns(size)
        arrival = self._busy_until + cfg.propagation_ns
        if arrival > now:
            yield arrival - now
        duplicate = False
        if self.faults is not None:
            from ..faults.plan import NIC_CORRUPT, NIC_DROP, NIC_DUPLICATE
            now = self.engine.now
            if self.faults.fires(NIC_DROP, now):
                self._fault_lost.add()
                return False
            if self.faults.fires(NIC_CORRUPT, now):
                self._fault_corrupted.add()
                return False
            duplicate = self.faults.fires(NIC_DUPLICATE, now)
        if (cfg.rx_queue_depth is not None
                and len(self.rx) >= cfg.rx_queue_depth):
            self._dropped.add()
            return False
        self.rx.put(request)
        self._delivered.add()
        if duplicate:
            # the second copy competes for ring space like any packet
            if (cfg.rx_queue_depth is None
                    or len(self.rx) < cfg.rx_queue_depth):
                self.rx.put(request)
                self._fault_duplicated.add()
        return True
