"""DORA-style partitioning: partition workers and routing."""

from .worker import PartitionWorker

__all__ = ["PartitionWorker"]
