"""DORA-style partition workers (§3.1, §4.2, §4.6).

A partition worker owns one database partition exclusively: its
softcore, its index coprocessor (a hash pipeline and a skiplist
pipeline sharing the in-flight budget semantics of §5.5) and one
communication link.  A worker never touches a remote partition's data
structures directly — a DB instruction bound for a remote partition
travels over the on-chip channels, is executed there as a *background*
request by that partition's coprocessor, and its result returns on the
response channel.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..comm.channels import Crossbar, RequestPacket, ResponsePacket
from ..index.bptree.pipeline import BPTreePipeline, BPTreeTimings
from ..index.common import DbRequest
from ..index.hash.compiled import CompiledHashPipeline
from ..index.hash.pipeline import HashIndexPipeline, HashTimings
from ..index.skiplist.pipeline import SkiplistPipeline, SkiplistTimings
from ..mem.schema import Catalog, IndexKind, TableSchema
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.memory import DramModel
from ..sim.stats import StatsRegistry
from ..softcore.catalogue import Catalogue
from ..softcore.core import Softcore, SoftcoreConfig
from ..txn.cc import DbResult
from ..txn.timestamps import HardwareClock

__all__ = ["PartitionWorker"]


class PartitionWorker:
    """One partition: softcore + index coprocessor + comm link."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        dram: DramModel,
        worker_id: int,
        n_workers: int,
        catalogue: Catalogue,
        hw_clock: HardwareClock,
        crossbar: Optional[Crossbar],
        softcore_config: Optional[SoftcoreConfig] = None,
        hash_kwargs: Optional[dict] = None,
        skiplist_kwargs: Optional[dict] = None,
        bptree_kwargs: Optional[dict] = None,
        stats: Optional[StatsRegistry] = None,
        on_txn_done=None,
        tracer=None,
    ):
        self.engine = engine
        self.worker_id = worker_id
        self.n_workers = n_workers
        self.catalogue = catalogue
        self.crossbar = crossbar
        self.stats = stats or StatsRegistry()

        self.softcore = Softcore(engine, clock, dram, worker_id, catalogue,
                                 hw_clock, config=softcore_config,
                                 stats=self.stats, on_txn_done=on_txn_done,
                                 tracer=tracer)
        # the compiled softcore tier brings the compiled (callback
        # state-machine) hash pipeline with it — cycle-identical to the
        # interpreted pipeline, far fewer host operations per op
        hash_cls = (CompiledHashPipeline
                    if softcore_config is not None and softcore_config.compiled
                    else HashIndexPipeline)
        self.hash_pipe = hash_cls(
            engine, clock, dram, f"w{worker_id}.hash", n_buckets=0,
            stats=self.stats, tracer=tracer, **(hash_kwargs or {}))
        self.skiplist_pipe = SkiplistPipeline(
            engine, clock, dram, f"w{worker_id}.skiplist",
            create_default_table=False, stats=self.stats, tracer=tracer,
            **(skiplist_kwargs or {}))
        # the B+ tree pipeline is built lazily on first use: a worker
        # with no BPTREE tables spawns no extra processes or memory
        # ports, keeping non-B+-tree runs cycle-identical
        self._bptree_pipe: Optional[BPTreePipeline] = None
        self._bptree_ctor = (engine, clock, dram, tracer)
        self._bptree_kwargs = dict(bptree_kwargs or {})

        self.softcore.route = self._route
        self.softcore.dispatch = self.dispatch

        self._bg_served = self.stats.counter(f"worker{worker_id}.background_requests")

        if crossbar is not None:
            engine.process(self._background_unit(),
                           name=f"w{worker_id}.background")
            engine.process(self._response_unit(),
                           name=f"w{worker_id}.responses")

    @property
    def bptree_pipe(self) -> BPTreePipeline:
        if self._bptree_pipe is None:
            engine, clock, dram, tracer = self._bptree_ctor
            self._bptree_pipe = BPTreePipeline(
                engine, clock, dram, f"w{self.worker_id}.bptree",
                create_default_table=False, stats=self.stats, tracer=tracer,
                **self._bptree_kwargs)
        return self._bptree_pipe

    # -- schema ------------------------------------------------------------
    def add_table(self, schema: TableSchema) -> None:
        if schema.index_kind == IndexKind.HASH:
            self.hash_pipe.add_table(schema.table_id, schema.hash_buckets)
        elif schema.index_kind == IndexKind.BPTREE:
            self.bptree_pipe.add_table(schema.table_id)
        else:
            self.skiplist_pipe.add_table(schema.table_id)

    def pipeline_for(self, table_id: int):
        schema = self.catalogue.schemas.table(table_id)
        if schema.index_kind == IndexKind.HASH:
            return self.hash_pipe
        if schema.index_kind == IndexKind.BPTREE:
            return self.bptree_pipe
        return self.skiplist_pipe

    # -- routing & dispatch ---------------------------------------------------
    def _route(self, table_id: int, key: Any) -> Optional[int]:
        schema = self.catalogue.schemas.table(table_id)
        return schema.route(key, self.n_workers)

    def dispatch(self, req: DbRequest, dst: Optional[int]) -> None:
        """Called by the softcore's Dispatch step (§4.3, Figure 4)."""
        if dst is None or dst == self.worker_id:
            req.on_complete = self._foreground_complete
            self.pipeline_for(req.table_id).submit(req)
        else:
            if self.crossbar is None:
                raise RuntimeError("remote dispatch without a crossbar")
            self.crossbar.send_request(RequestPacket(
                src_worker=self.worker_id, dst_worker=dst, request=req))

    def _foreground_complete(self, req: DbRequest, result: DbResult) -> None:
        self.softcore.deliver(req.cp_index, result)

    # -- background units (remote requests / responses) -----------------------
    def _background_unit(self):
        """Watches the request channel; dispatches inbound instructions
        to the local coprocessor as background requests."""
        link = self.crossbar.link(self.worker_id)
        while True:
            packet: RequestPacket = yield link.requests.get()
            req = packet.request
            req.background = True
            req.on_complete = self._background_complete(packet.src_worker)
            self._bg_served.add()
            self.pipeline_for(req.table_id).submit(req)

    def _background_complete(self, initiator: int) -> Callable:
        def cb(req: DbRequest, result: DbResult) -> None:
            self.crossbar.send_response(ResponsePacket(
                src_worker=self.worker_id, dst_worker=initiator,
                cp_index=req.cp_index, txn_id=req.txn_id, result=result,
                req_id=req.req_id))
        return cb

    def _response_unit(self):
        """Watches the response channel; writes results back to CP
        registers asynchronously."""
        link = self.crossbar.link(self.worker_id)
        while True:
            packet: ResponsePacket = yield link.responses.get()
            self.softcore.deliver(packet.cp_index, packet.result)

    # -- convenience -----------------------------------------------------------
    def set_max_in_flight(self, n: int) -> None:
        self.hash_pipe.set_max_in_flight(n)
        self.skiplist_pipe.set_max_in_flight(n)
        self._bptree_kwargs["max_in_flight"] = n
        if self._bptree_pipe is not None:
            self._bptree_pipe.set_max_in_flight(n)
