"""Simulated memory: the FPGA-side DRAM and on-chip BRAM.

The paper's machine (Convey/Micron HC-2) gives each FPGA chip access to
on-board DDR2 through dedicated memory controllers.  In-memory OLTP is
bound by *latency* of small random accesses, not bandwidth (§4.1), so
the model centres on:

* a fixed random-access latency per request (``latency_cycles``),
* per-port issue limits (a port can only have ``max_outstanding``
  requests in flight — this is what caps memory-level parallelism and
  produces the saturation knees of Figures 10 and 11),
* per-channel issue slots (8 controllers / channels),
* an aggregate bandwidth counter checked against the 10 GB/s budget.

Data lives in a :class:`Heap`: a word-addressed object store.  One heap
cell corresponds to one 64-byte line (a record header, a hash bucket
entry, a skiplist tower, one payload chunk).  Reads sample the cell and
writes apply at *service time*, so the pipeline hazards described in
§4.4 (insert-after-insert, search-after-insert) genuinely occur when
hazard prevention is disabled.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, Dict, Optional

from .clock import ClockDomain
from .engine import Engine, Event
from .stats import StatsRegistry

__all__ = ["Heap", "DramModel", "MemoryPort", "Bram", "LINE_BYTES"]

LINE_BYTES = 64  # one heap cell models one 64-byte DRAM line


class Heap:
    """Word-addressed object store with a bump allocator.

    Addresses are integers.  ``alloc(n)`` reserves ``n`` consecutive
    cells.  The heap is shared by all partitions (the FPGA's on-board
    DRAM is one physical address space); isolation between partitions
    is a matter of discipline, exactly as in the hardware.
    """

    def __init__(self, base: int = 0x1000):
        self._cells: Dict[int, Any] = {}
        self._next = base
        self.allocated_cells = 0

    def alloc(self, n_cells: int = 1) -> int:
        if n_cells < 1:
            raise ValueError("allocation must be >= 1 cell")
        addr = self._next
        self._next += n_cells
        self.allocated_cells += n_cells
        return addr

    def load(self, addr: int) -> Any:
        return self._cells.get(addr)

    def store(self, addr: int, value: Any) -> None:
        self._cells[addr] = value

    def __contains__(self, addr: int) -> bool:
        return addr in self._cells

    @property
    def bytes_allocated(self) -> int:
        return self.allocated_cells * LINE_BYTES


class _Request:
    __slots__ = ("kind", "addr", "value", "event", "apply_fn", "cb", "cb_arg")

    def __init__(self, kind: str, addr: int, value: Any, event: Optional[Event],
                 apply_fn: Optional[Callable] = None,
                 cb: Optional[Callable] = None, cb_arg: Any = None):
        self.kind = kind
        self.addr = addr
        self.value = value
        self.event = event
        self.apply_fn = apply_fn
        self.cb = cb
        self.cb_arg = cb_arg


class DramModel:
    """Shared DRAM: channels, latency, bandwidth accounting."""

    def __init__(
        self,
        engine: Engine,
        clock: ClockDomain,
        heap: Heap,
        latency_cycles: float = 85.0,
        channels: int = 8,
        channel_issue_interval_cycles: float = 1.0,
        stats: Optional[StatsRegistry] = None,
    ):
        self.engine = engine
        self.clock = clock
        self.heap = heap
        self.latency_ns = clock.ns(latency_cycles)
        self.channels = channels
        self.channel_interval_ns = clock.ns(channel_issue_interval_cycles)
        self._channel_free = [0.0] * channels
        self.stats = stats or StatsRegistry()
        self._reads = self.stats.counter("dram.reads")
        self._writes = self.stats.counter("dram.writes")

    def new_port(self, name: str = "", max_outstanding: int = 4,
                 issue_interval_cycles: float = 1.0) -> "MemoryPort":
        return MemoryPort(self, name=name, max_outstanding=max_outstanding,
                          issue_interval_cycles=issue_interval_cycles)

    # -- timing-free host access (loading, verification, checkpoints) ----
    def direct_read(self, addr: int) -> Any:
        return self.heap.load(addr)

    def direct_write(self, addr: int, value: Any) -> None:
        self.heap.store(addr, value)

    # -- accounting -------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return self._reads.value + self._writes.value

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return self.total_accesses * LINE_BYTES / elapsed_ns  # bytes/ns == GB/s

    # -- internal: channel arbitration ------------------------------------
    def _issue_time(self, addr: int, earliest: float) -> float:
        # Kept for compatibility; the hot path in MemoryPort._launch
        # inlines this arithmetic (same semantics, no method call).
        ch = addr % self.channels
        t = max(earliest, self._channel_free[ch])
        self._channel_free[ch] = t + self.channel_interval_ns
        return t


class MemoryPort:
    """One requester's window into DRAM.

    A port issues at most one request per ``issue_interval`` and holds at
    most ``max_outstanding`` requests in flight.  Pipeline stages and the
    softcore each own ports; the per-port outstanding limit is the
    modelled analogue of the HC-2 memory-port semantics that caps MLP.
    """

    def __init__(self, dram: DramModel, name: str = "", max_outstanding: int = 4,
                 issue_interval_cycles: float = 1.0):
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.dram = dram
        self.engine = dram.engine
        self.name = name
        self.max_outstanding = max_outstanding
        self.issue_interval_ns = dram.clock.ns(issue_interval_cycles)
        self._outstanding = 0
        self._next_issue = 0.0
        self._pending: Deque[_Request] = deque()
        self.issued = 0
        # bound once: the closure-free completion path hands these to
        # Engine.call_fn_at instead of allocating a lambda per request
        self._launch_cb = self._launch
        self._complete_cb = self._complete
        # the stock engine's work-item layout is known, so the hot path
        # pushes (when, seq, fn, arg) items directly; any other
        # Engine-shaped loop (e.g. the perf ReferenceEngine) goes
        # through its _schedule_fn
        self._stock_engine = type(self.engine) is Engine

    # -- public operations -------------------------------------------------
    def read(self, addr: int) -> Event:
        """Read a cell; the event fires with the cell's value at service."""
        ev = Event(self.engine)
        self._submit(_Request("read", addr, None, ev))
        return ev

    def write(self, addr: int, value: Any) -> Event:
        """Write a cell; the event fires when the write is serviced."""
        ev = Event(self.engine)
        self._submit(_Request("write", addr, value, ev))
        return ev

    def post_write(self, addr: int, value: Any) -> None:
        """Posted (fire-and-forget) write; still occupies an issue slot."""
        self._submit(_Request("write", addr, value, None))

    def read_cb(self, addr: int, fn: Callable, arg: Any) -> None:
        """Read with a closure-free completion callback.

        ``fn((arg, value))`` is scheduled at the exact ready-deque
        position the event dispatch of :meth:`read` would occupy, so
        timing (and same-instant firing order) is identical — the only
        difference is that no :class:`Event` is allocated.  This is the
        completion path of the compiled pipeline tier.
        """
        self._submit(_Request("read", addr, None, None, cb=fn, cb_arg=arg))

    def write_cb(self, addr: int, value: Any, fn: Callable, arg: Any) -> None:
        """Write with a closure-free completion callback (see read_cb)."""
        self._submit(_Request("write", addr, value, None, cb=fn, cb_arg=arg))

    def apply(self, addr: int, fn: Callable[[Any], None]) -> Event:
        """Read-modify-write: run ``fn(cell_value)`` at service time.

        Models a masked line write (e.g. updating one field of a record
        header); the mutation happens when DRAM services the request,
        preserving hazard semantics.
        """
        ev = Event(self.engine)
        self._submit(_Request("rmw", addr, None, ev, apply_fn=fn))
        return ev

    def post_apply(self, addr: int, fn: Callable[[Any], None]) -> None:
        self._submit(_Request("rmw", addr, None, None, apply_fn=fn))

    @property
    def outstanding(self) -> int:
        return self._outstanding

    # -- internal ------------------------------------------------------------
    def _submit(self, req: _Request) -> None:
        if self._outstanding >= self.max_outstanding:
            self._pending.append(req)
            return
        # fused issue + launch fast path: an idle port whose issue slot
        # is free arbitrates the channel and schedules completion in one
        # step (identical work items to _issue/_launch, no call chain)
        self._outstanding += 1
        self.issued += 1
        engine = self.engine
        now = engine.now
        nxt = self._next_issue
        if nxt <= now:
            self._next_issue = now + self.issue_interval_ns
            dram = self.dram
            ch = req.addr % dram.channels
            free = dram._channel_free[ch]
            t_issue = free if free > now else now
            dram._channel_free[ch] = t_issue + dram.channel_interval_ns
            if req.kind == "read":
                dram._reads.value += 1
            else:
                dram._writes.value += 1
            if self._stock_engine:
                seq = engine._seq = engine._seq + 1
                heappush(engine._heap, (t_issue + dram.latency_ns, seq,
                                        self._complete_cb, req))
            else:
                engine._schedule_fn(t_issue + dram.latency_ns,
                                    self._complete_cb, req)
        else:
            # wait for the port's issue slot, then arbitrate the channel
            # *at that instant* — reserving channel slots early would let
            # one backlogged port starve other requesters of idle slots.
            self._next_issue = nxt + self.issue_interval_ns
            if self._stock_engine:
                seq = engine._seq = engine._seq + 1
                heappush(engine._heap, (nxt, seq, self._launch_cb, req))
            else:
                engine._schedule_fn(nxt, self._launch_cb, req)

    def _issue(self, req: _Request) -> None:
        self._outstanding += 1
        self.issued += 1
        now = self.engine.now
        nxt = self._next_issue
        if nxt <= now:
            # idle-port fast-forward: the issue slot is free right now
            self._next_issue = now + self.issue_interval_ns
            self._launch(req)
        else:
            # wait for the port's issue slot, then arbitrate the channel
            # *at that instant* — reserving channel slots early would let
            # one backlogged port starve other requesters of idle slots.
            self._next_issue = nxt + self.issue_interval_ns
            # nxt > now here, so skip call_fn_at's past-check
            self.engine._schedule_fn(nxt, self._launch_cb, req)

    def _launch(self, req: _Request) -> None:
        dram = self.dram
        engine = self.engine
        now = engine.now
        # inline channel arbitration (DramModel._issue_time) with an
        # analytic fast-forward: an idle channel issues at `now` without
        # the max() round-trip
        ch = req.addr % dram.channels
        free = dram._channel_free[ch]
        t_issue = free if free > now else now
        dram._channel_free[ch] = t_issue + dram.channel_interval_ns
        if req.kind == "read":
            dram._reads.value += 1
        else:
            dram._writes.value += 1
        # t_issue >= now and latency > 0, so the completion always lands
        # on the heap — the same work item _schedule_fn would push
        if self._stock_engine:
            seq = engine._seq = engine._seq + 1
            heappush(engine._heap, (t_issue + dram.latency_ns, seq,
                                    self._complete_cb, req))
        else:
            engine._schedule_fn(t_issue + dram.latency_ns,
                                self._complete_cb, req)

    def _complete(self, req: _Request) -> None:
        heap = self.dram.heap
        if req.kind == "read":
            value = heap.load(req.addr)
        elif req.kind == "write":
            heap.store(req.addr, req.value)
            value = None
        else:  # rmw
            req.apply_fn(heap.load(req.addr))
            value = None
        self._outstanding -= 1
        if self._pending:
            self._issue(self._pending.popleft())
        event = req.event
        if event is not None:
            event.succeed(value)
        elif req.cb is not None:
            # same ready-deque slot the succeed() dispatch would take
            engine = self.engine
            if self._stock_engine:
                seq = engine._seq = engine._seq + 1
                engine._ready.append((seq, req.cb, (req.cb_arg, value)))
            else:
                engine._schedule_fn(engine.now, req.cb, (req.cb_arg, value))


class Bram:
    """On-chip block RAM: single-cycle, capacity-accounted storage.

    BRAM accesses are folded into stage service times (they complete in
    the same cycle), so this class only provides storage plus capacity
    accounting for the Table 4 resource ledger.  A Virtex-5 BRAM block
    holds 36 Kb; ``blocks_for`` converts a byte requirement to blocks.
    """

    BLOCK_BITS = 36 * 1024

    def __init__(self, name: str = "", capacity_bytes: int = 4096):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._data: Dict[Any, Any] = {}

    @classmethod
    def blocks_for(cls, bytes_needed: int) -> int:
        bits = bytes_needed * 8
        return max(1, (bits + cls.BLOCK_BITS - 1) // cls.BLOCK_BITS)

    @property
    def blocks(self) -> int:
        return self.blocks_for(self.capacity_bytes)

    def load(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def store(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
