"""Synchronisation primitives built on the DES engine.

These model the hardware structures BionicDB is built from: bounded
FIFOs between pipeline stages, token pools that throttle in-flight DB
instructions, and simple locks for lock tables on BRAM.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Engine, Event, SimulationError

__all__ = ["Fifo", "TokenPool", "Gate", "Mutex"]


class Fifo:
    """A FIFO channel with optional capacity.

    ``put(item)`` and ``get()`` both return events.  With ``capacity``
    None the queue is unbounded and puts complete immediately — this is
    how inter-stage queues are modelled (the paper permits "multiple
    outstanding DB instructions between neighbouring stages"; global
    occupancy is throttled by a :class:`TokenPool` instead).
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self.total_put = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.engine)
        self.total_put += 1
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed(None)
            return ev
        items = self._items
        cap = self.capacity
        if cap is None or len(items) < cap:
            items.append(item)
            depth = len(items)
            if depth > self.max_depth:
                self.max_depth = depth
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the queue is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            self.total_put += 1
            return True
        items = self._items
        cap = self.capacity
        if cap is not None and len(items) >= cap:
            return False
        items.append(item)
        self.total_put += 1
        depth = len(items)
        if depth > self.max_depth:
            self.max_depth = depth
        return True

    def get(self) -> Event:
        ev = Event(self.engine)
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            ev.succeed(item)
        elif self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed(None)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        if self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed(None)
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            put_ev, item = self._putters.popleft()
            self._items.append(item)
            depth = len(self._items)
            if depth > self.max_depth:
                self.max_depth = depth
            put_ev.succeed(None)


class TokenPool:
    """A counting semaphore; models in-flight request throttling.

    The benchmark sweeps of Figures 10 and 11 vary "the maximum number
    of in-flight DB requests over the index coprocessor" — that limit is
    a token pool acquired on dispatch and released by terminal pipeline
    stages.
    """

    def __init__(self, engine: Engine, tokens: int, name: str = ""):
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        self.engine = engine
        self.capacity = tokens
        self.available = tokens
        self.name = name
        self._waiters: Deque[Event] = deque()
        self.total_acquired = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    def acquire(self) -> Event:
        ev = Event(self.engine)
        if self.available > 0:
            self.available -= 1
            self.total_acquired += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self.total_acquired += 1
            self._waiters.popleft().succeed(None)
        else:
            if self.available >= self.capacity:
                raise SimulationError(f"token pool {self.name!r} over-released")
            self.available += 1

    def resize(self, tokens: int) -> None:
        """Grow/shrink the pool (used by in-flight sweeps between runs)."""
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        delta = tokens - self.capacity
        self.capacity = tokens
        self.available += delta
        while self.available > 0 and self._waiters:
            self.available -= 1
            self.total_acquired += 1
            self._waiters.popleft().succeed(None)


class Gate:
    """A level-triggered condition: processes wait until it is opened."""

    def __init__(self, engine: Engine, open_: bool = False):
        self.engine = engine
        self._open = open_
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.engine)
        if self._open:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed(None)

    def close(self) -> None:
        self._open = False


class Mutex:
    """A simple FIFO mutex (used for per-entry lock-table waits)."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.locked = False
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        ev = Event(self.engine)
        if not self.locked:
            self.locked = True
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self.locked:
            raise SimulationError("mutex released while unlocked")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self.locked = False
