"""Discrete-event simulation substrate for the BionicDB reproduction."""

from .clock import ClockDomain
from .engine import AllOf, AnyOf, Engine, Event, Interrupt, Process, SimulationError, Timeout
from .memory import Bram, DramModel, Heap, MemoryPort, LINE_BYTES
from .power import CpuPowerModel, FpgaPowerModel, PowerReport
from .resources import (
    HC2_INFRASTRUCTURE,
    ResourceLedger,
    ResourceVector,
    VIRTEX5_LX330,
    per_worker_costs,
)
from .stats import (
    Counter, Histogram, PercentileHistogram, StatsRegistry, nearest_rank,
)
from .sync import Fifo, Gate, Mutex, TokenPool
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "AllOf", "AnyOf", "Engine", "Event", "Interrupt", "Process",
    "SimulationError", "Timeout", "ClockDomain",
    "Bram", "DramModel", "Heap", "MemoryPort", "LINE_BYTES",
    "CpuPowerModel", "FpgaPowerModel", "PowerReport",
    "HC2_INFRASTRUCTURE", "ResourceLedger", "ResourceVector",
    "VIRTEX5_LX330", "per_worker_costs",
    "Counter", "Histogram", "PercentileHistogram", "StatsRegistry",
    "nearest_rank",
    "Fifo", "Gate", "Mutex", "TokenPool",
    "NULL_TRACER", "TraceEvent", "Tracer",
]
