"""Lightweight statistics counters shared by all simulated components."""

from __future__ import annotations

import math
from typing import Dict, Sequence

__all__ = ["Counter", "Histogram", "PercentileHistogram", "StatsRegistry",
           "nearest_rank"]


def nearest_rank(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence.

    ``p`` is in (0, 100].  Kept integer-exact: the rank is a true
    ``ceil`` rather than the float ``//`` arithmetic it replaces.
    """
    if not sorted_values:
        return 0.0
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100]")
    rank = max(1, math.ceil(len(sorted_values) * p / 100))
    return sorted_values[rank - 1]


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Streaming histogram: count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class PercentileHistogram(Histogram):
    """Histogram with log-bucketed percentile estimation.

    Values are binned into geometric buckets (8 per octave, ~9% wide),
    so ``percentile`` answers with bounded relative error (±4.5%) in
    O(buckets) memory regardless of observation count — the structure
    SLO tracking needs where an exact sorted list would not scale to
    millions of requests.  Non-positive observations land in a single
    underflow bucket.
    """

    __slots__ = ("_buckets",)

    _BASE = 2.0 ** 0.125          # 8 buckets per octave
    _UNDERFLOW = -(1 << 40)       # bucket index for values <= 0

    def __init__(self, name: str):
        super().__init__(name)
        self._buckets: Dict[int, int] = {}

    def observe(self, x: float) -> None:
        super().observe(x)
        if x <= 0:
            idx = self._UNDERFLOW
        else:
            idx = math.floor(math.log(x, self._BASE))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the bucketed distribution."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100))
        cum = 0
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            if cum >= target:
                if idx == self._UNDERFLOW:
                    return min(self.min, 0.0)
                lo = self._BASE ** idx
                mid = lo * self._BASE ** 0.5   # geometric bucket midpoint
                return min(max(mid, self.min), self.max)
        return self.max

    def reset(self) -> None:
        super().reset()
        self._buckets.clear()


class StatsRegistry:
    """Hierarchical registry so components can be audited after a run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def percentile_histogram(self, name: str) -> PercentileHistogram:
        if name not in self._histograms:
            self._histograms[name] = PercentileHistogram(name)
        return self._histograms[name]

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.mean"] = h.mean
        return out

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def by_prefix(self, prefix: str) -> Dict[str, float]:
        return {k: v for k, v in self.snapshot().items() if k.startswith(prefix)}
