"""Lightweight statistics counters shared by all simulated components."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

__all__ = ["Counter", "Histogram", "StatsRegistry"]


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Streaming histogram: count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class StatsRegistry:
    """Hierarchical registry so components can be audited after a run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.mean"] = h.mean
        return out

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for h in self._histograms.values():
            h.reset()

    def by_prefix(self, prefix: str) -> Dict[str, float]:
        return {k: v for k, v in self.snapshot().items() if k.startswith(prefix)}
