"""Clock domains: convert cycle counts to engine time (nanoseconds).

BionicDB runs at 125 MHz (8 ns/cycle); the Xeon baseline at 1.87 GHz.
A :class:`ClockDomain` is attached to every timed component so cycle
budgets from the paper translate into a shared nanosecond timeline.
"""

from __future__ import annotations

from .engine import Engine

__all__ = ["ClockDomain"]


class ClockDomain:
    def __init__(self, engine: Engine, freq_mhz: float, name: str = ""):
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive")
        self.engine = engine
        self.freq_mhz = freq_mhz
        self.ns_per_cycle = 1000.0 / freq_mhz
        self.name = name

    def ns(self, cycles: float) -> float:
        """Nanoseconds taken by ``cycles`` cycles."""
        return cycles * self.ns_per_cycle

    def cycles(self, ns: float) -> float:
        """Cycles elapsed in ``ns`` nanoseconds."""
        return ns / self.ns_per_cycle

    def delay(self, cycles: float) -> float:
        """A delay of ``cycles`` cycles, for yielding from a process.

        Returns the plain nanosecond figure rather than a Timeout
        event: the engine's numeric-delay fast path schedules the
        resumption without allocating an event object, and the timing
        is identical either way.
        """
        return self.ns(cycles)

    @property
    def now_cycles(self) -> float:
        return self.engine.now / self.ns_per_cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClockDomain({self.name or 'anon'}, {self.freq_mhz} MHz)"
