"""Discrete-event simulation engine.

Everything in the BionicDB reproduction — pipeline stages, the softcore,
DRAM, on-chip channels, the software baseline's CPU cores — runs as a
*process* inside one :class:`Engine`.  A process is a Python generator
that yields :class:`Event` objects (or plain numbers, treated as delays
in the engine's time unit) and is resumed when the yielded event fires.

The design follows the familiar SimPy structure but is implemented from
scratch so the simulation core has no external dependencies and stays
small enough to audit.  Time is a float measured in **nanoseconds**;
clock domains (:mod:`repro.sim.clock`) convert cycles to nanoseconds.

Hot-path layout
---------------
The engine executes tens of thousands of host operations per simulated
microsecond, so the scheduling core is written for throughput while
keeping the *simulated* timing bit-identical to the straightforward
heap-of-events implementation it replaced
(:mod:`repro.perf.refengine` keeps that implementation alive as the
cycle-equivalence oracle):

* Work items are ``(when, seq, fn, arg)`` tuples; firing one is a
  single call ``fn(arg)``.  Full :class:`Event` objects only exist
  where the API hands one to user code — internal resumptions (process
  kicks, delay wake-ups, memory completions) are scheduled closure-free
  through :meth:`Engine._schedule_fn` with a *pre-bound* method, so the
  common case allocates one tuple instead of an ``Event`` + ``list`` +
  ``lambda`` + bound method.
* Work due at the **current** time goes onto a FIFO ready-deque instead
  of round-tripping through the heap.  Heap entries carrying the same
  timestamp always predate (in sequence order) anything on the deque —
  they were pushed before the clock reached that instant, and same-time
  scheduling never touches the heap — so the run loop's merge preserves
  the exact global FIFO order the sequence-numbered heap produced.
* Value-less :class:`Timeout` objects are pooled: once fired, a bare
  timeout is inert (its value is ``None`` forever), so the engine
  recycles it for the next ``timeout()`` call.  Hold on to a fired
  value-less timeout only to ignore it.
* A process that yields a plain number never materialises a Timeout at
  all: the resumption is scheduled as a callback guarded by a per-wait
  epoch (the epoch is also the O(1) interrupt tombstone).
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import BionicError, SimulatedCrash

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(BionicError, RuntimeError):
    """Raised for illegal engine operations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def _invoke(fn: Callable[[], None]) -> None:
    """Adapter so zero-argument ``call_at`` thunks fit ``fn(arg)`` items."""
    fn()


#: marker for a process waiting on an anonymous numeric delay (no Event)
_DELAY = object()

#: upper bound on the value-less Timeout free list
_TIMEOUT_POOL_CAP = 128


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with :meth:`succeed`
    (delivering ``value`` to waiters) or :meth:`fail` (raising the given
    exception inside waiters).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "triggered", "_scheduled")

    #: class-level default; only pooled Timeouts override it
    _pooled = False

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self._scheduled = False

    # -- inspection ------------------------------------------------------
    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.engine._dispatch(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.engine._dispatch(self)
        return self


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now.

    Value-less timeouts (``value is None``) are recycled through the
    engine's free list after they fire: a fired bare timeout is inert,
    so the object may be reused as a *new* pending timeout by a later
    ``engine.timeout()`` call.  Do not cache a fired value-less timeout
    and expect its flags to stay frozen; timeouts carrying a value are
    never pooled.
    """

    __slots__ = ("_pooled",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(engine)
        self._value = value
        self._pooled = value is None
        engine._schedule_at(engine.now + delay, self)


class Process(Event):
    """Runs a generator; as an Event it fires when the generator returns.

    The generator's ``return`` value becomes the event value.  If the
    generator raises, the process event fails with that exception, which
    propagates to any process waiting on it.

    ``_resume`` / ``_delay_cb`` hold bound methods created once at
    construction so the wait/wake cycle never re-binds them;
    ``_delay_epoch`` tombstones stale delay wake-ups in O(1) and
    ``_dead`` tombstones one stale event callback after an interrupt
    (replacing the old O(n) ``callbacks.remove`` scan).
    """

    __slots__ = ("_gen", "_waiting_on", "name", "_resume", "_delay_cb",
                 "_dead", "_delay_epoch")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._dead: Optional[Event] = None
        self._delay_epoch = 0
        self.name = name or getattr(gen, "__name__", "process")
        self._resume: Callable = self._do_resume
        self._delay_cb: Callable = self._delay_resume
        # Kick off on the next dispatch round at the current time.
        seq = engine._seq = engine._seq + 1
        engine._ready.append((seq, self._kick, None))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        self._throw_in(Interrupt(cause))

    def kill(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current time.

        Unlike :meth:`interrupt` (which the process may catch and
        recover from), ``kill`` delivers an arbitrary exception — the
        crash-injection hook for modelling a hardware unit dying
        mid-flight."""
        if not isinstance(exc, BaseException):
            raise TypeError("kill() requires an exception instance")
        self._throw_in(exc)

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        target = self._waiting_on
        if target is _DELAY:
            # O(1) tombstone: the pending wake-up's epoch no longer matches
            self._delay_epoch += 1
        elif (target is not None and not target.triggered
                and target.callbacks is not None):
            # O(1) tombstone: _do_resume swallows one firing of this event
            self._dead = target
        self._waiting_on = None
        engine = self.engine
        engine._schedule_fn(engine.now, self._throw_step, exc)

    # -- internal --------------------------------------------------------
    def _kick(self, _arg: Any) -> None:
        self._step(None, False)

    def _throw_step(self, exc: BaseException) -> None:
        self._step(exc, True)

    def _delay_resume(self, epoch: int) -> None:
        if epoch != self._delay_epoch or self.triggered:
            return
        self._waiting_on = None
        self._step(None, False)

    def _do_resume(self, event: Event) -> None:
        if event is self._dead:
            self._dead = None
            return
        self._waiting_on = None
        exc = event._exc
        if exc is None:
            self._step(event._value, False)
        else:
            self._step(exc, True)

    def _step(self, value: Any, throw: bool) -> None:
        if self.triggered:
            return
        gen = self._gen
        try:
            if throw:
                yielded = gen.throw(value)
            else:
                yielded = gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        cls = yielded.__class__
        if cls is float or cls is int:
            # inlined _wait_delay: the single hottest path in the system
            if yielded < 0:
                raise ValueError(f"negative delay: {yielded}")
            engine = self.engine
            self._waiting_on = _DELAY
            epoch = self._delay_epoch = self._delay_epoch + 1
            now = engine.now
            when = now + yielded
            seq = engine._seq = engine._seq + 1
            if when == now:
                engine._ready.append((seq, self._delay_cb, epoch))
            else:
                _heappush(engine._heap, (when, seq, self._delay_cb, epoch))
            return
        if isinstance(yielded, Event):
            self._waiting_on = yielded
            if yielded.triggered:
                # Already fired: resume on the next dispatch round so other
                # same-time callbacks run first (prevents starvation loops).
                engine = self.engine
                seq = engine._seq = engine._seq + 1
                engine._ready.append((seq, self._resume, yielded))
            else:
                yielded.callbacks.append(self._resume)
            return
        if isinstance(yielded, (int, float)):  # bool / exotic numeric types
            self._wait_delay(yielded)
            return
        self.fail(SimulationError(
            f"process {self.name!r} yielded {yielded!r}; expected Event or delay"
        ))

    def _wait_delay(self, delay: float) -> None:
        """Anonymous delay: no Timeout object, just an epoch-guarded wake."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._waiting_on = _DELAY
        self._delay_epoch += 1
        engine = self.engine
        engine._schedule_fn(engine.now + delay, self._delay_cb,
                            self._delay_epoch)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_events", "_child_cb")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        cb = self._child_cb = self._on_child
        for ev in self._events:
            if ev.triggered:
                self._on_child(ev)
            else:
                ev.callbacks.append(cb)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is (event, value).

    When the first child fires, the callbacks registered on the *losing*
    children are detached, so a long-lived event raced against many
    short ones does not accumulate dead waiter references.
    """

    __slots__ = ("_events", "_child_cb")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf needs at least one event")
        cb = self._child_cb = self._on_child
        for ev in self._events:
            if ev.triggered:
                self._on_child(ev)
                break
            ev.callbacks.append(cb)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        self._detach_losers(event)
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((event, event._value))

    def _detach_losers(self, winner: Event) -> None:
        cb = self._child_cb
        for ev in self._events:
            if ev is winner or ev.callbacks is None:
                continue
            try:
                ev.callbacks.remove(cb)
            except ValueError:
                pass


class Engine:
    """The event loop: a time-ordered heap plus a same-time ready-deque.

    Work items are ``(when, seq, fn, arg)``; ``fn(arg)`` fires one item.
    Events fire through the pre-bound ``self._fire``; internal
    resumptions are scheduled directly as bound-method callbacks.  The
    ready-deque holds items due at the *current* time in FIFO (sequence)
    order; heap entries stamped with the current time always carry lower
    sequence numbers than anything on the deque (see module docstring),
    so the merge in :meth:`run` reproduces the heap-only firing order
    exactly.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._ready: deque = deque()
        self._timeout_pool: list = []
        #: lifetime count of fired events (watchdog bookkeeping)
        self.events_fired: int = 0
        #: crash hook: when set, the run loop raises
        #: :class:`~repro.errors.SimulatedCrash` once ``events_fired``
        #: reaches this count — the whole-machine-dies fault site
        self.crash_at_fired: Optional[int] = None
        self._halted = False
        self._fire_cb: Callable = self._fire

    # -- public API ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if value is None:
            pool = self._timeout_pool
            if pool:
                if delay < 0:
                    raise ValueError(f"negative delay: {delay}")
                t = pool.pop()
                t.callbacks = []
                t._value = None
                t._exc = None
                t.triggered = False
                self._schedule_at(self.now + delay, t)
                return t
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``when`` (≥ now)."""
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        self._schedule_fn(when, _invoke, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def call_fn_at(self, when: float, fn: Callable[[Any], None],
                   arg: Any = None) -> None:
        """Closure-free :meth:`call_at`: run ``fn(arg)`` at ``when``.

        The hot-path variant — the caller passes a pre-bound method and
        its argument, so no relay lambda (and no closure cell) is ever
        allocated.
        """
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        self._schedule_fn(when, fn, arg)

    @property
    def idle(self) -> bool:
        """True when no work is queued (heap and ready-deque drained)."""
        return not self._heap and not self._ready

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queues drain or simulated time reaches ``until``.

        ``max_events`` is a watchdog: if more than that many events fire
        in this call, raise :class:`SimulationError` instead of spinning
        the host forever on a runaway process (e.g. a stored procedure
        branching in an unconditional loop, which makes simulated
        progress on every iteration and so never trips ``until``).

        A call to :meth:`halt` from inside a callback stops the loop at
        the current time (the graceful stop hook); an armed
        ``crash_at_fired`` raises :class:`SimulatedCrash` instead (the
        machine-dies hook).
        """
        fired = 0
        self._halted = False
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        unbounded = until is None
        unwatched = max_events is None
        # events_fired is kept in a local inside the loop (one attribute
        # store per firing is measurable at paper scale); callbacks never
        # read it mid-run — the only consumer, _maybe_crash, gets a
        # synced value, and the finally republishes it on every exit.
        base = self.events_fired
        try:
            while not self._halted:
                if ready:
                    # Same-time heap entries (lower seq) fire before the deque.
                    if heap and heap[0][0] <= self.now and heap[0][1] < ready[0][0]:
                        from_heap = True
                        when = heap[0][0]
                    else:
                        from_heap = False
                        when = self.now
                elif heap:
                    from_heap = True
                    when = heap[0][0]
                else:
                    break
                if not unbounded and when > until:
                    self.now = until
                    return self.now
                if not unwatched and fired >= max_events:
                    raise SimulationError(
                        f"watchdog: {fired} events fired without the heap "
                        f"draining — runaway process?", now_ns=self.now,
                        pending=len(heap) + len(ready))
                if from_heap:
                    when, _seq, fn, arg = heappop(heap)
                    self.now = when
                else:
                    _seq, fn, arg = ready.popleft()
                fired += 1
                fn(arg)
                if self.crash_at_fired is not None:
                    self.events_fired = base + fired
                    self._maybe_crash()
        finally:
            self.events_fired = base + fired
        if not unbounded and not self._halted:
            self.now = max(self.now, until)
        return self.now

    def halt(self) -> None:
        """Stop the current :meth:`run` (or :meth:`run_until_done`) loop
        after the firing event's callbacks finish; pending events stay
        queued for the next run."""
        self._halted = True

    def run_until_done(self, done: Event, limit: float = float("inf"),
                       max_events: Optional[int] = None) -> float:
        """Run until ``done`` triggers; raise if the queues drain first.

        Honours the same controls as :meth:`run`: :meth:`halt` stops the
        loop at the current time (returning with ``done`` possibly still
        pending) and ``max_events`` is the runaway-process watchdog.
        """
        fired = 0
        self._halted = False
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        while not done.triggered:
            if self._halted:
                return self.now
            if ready:
                if heap and heap[0][0] <= self.now and heap[0][1] < ready[0][0]:
                    from_heap = True
                    when = heap[0][0]
                else:
                    from_heap = False
                    when = self.now
            elif heap:
                from_heap = True
                when = heap[0][0]
            else:
                raise SimulationError("deadlock: event heap drained before done")
            if when > limit:
                raise SimulationError(f"time limit {limit} exceeded")
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"watchdog: {fired} events fired before done triggered "
                    f"— runaway process?", now_ns=self.now,
                    pending=len(heap) + len(ready))
            if from_heap:
                when, _seq, fn, arg = heappop(heap)
                self.now = when
            else:
                _seq, fn, arg = ready.popleft()
            fired += 1
            self.events_fired += 1
            fn(arg)
            self._maybe_crash()
        return self.now

    def _maybe_crash(self) -> None:
        if (self.crash_at_fired is not None
                and self.events_fired >= self.crash_at_fired):
            self.crash_at_fired = None    # a machine crashes once
            raise SimulatedCrash("injected machine crash",
                                 site="machine.crash",
                                 events_fired=self.events_fired,
                                 now_ns=self.now)

    # -- internal --------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        seq = self._seq = self._seq + 1
        event._scheduled = True
        if when == self.now:
            self._ready.append((seq, self._fire_cb, event))
        else:
            heapq.heappush(self._heap, (when, seq, self._fire_cb, event))

    def _schedule_fn(self, when: float, fn: Callable[[Any], None],
                     arg: Any) -> None:
        seq = self._seq = self._seq + 1
        if when == self.now:
            self._ready.append((seq, fn, arg))
        else:
            heapq.heappush(self._heap, (when, seq, fn, arg))

    def _dispatch(self, event: Event) -> None:
        """Queue a freshly-triggered event's callbacks at the current time.

        Triggering always queues at ``now``, which always lands on the
        ready-deque (inlined :meth:`_schedule_at`).
        """
        if event._scheduled:
            return  # it is queued already; callbacks run when popped
        event._scheduled = True
        seq = self._seq = self._seq + 1
        self._ready.append((seq, self._fire_cb, event))

    def _fire(self, event: Event) -> None:
        # every event reaching here is either triggered (succeed/fail)
        # or a Timeout whose trigger is this very firing
        event.triggered = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
        if event._pooled and event._exc is None:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_CAP:
                event._scheduled = False
                pool.append(event)
