"""Discrete-event simulation engine.

Everything in the BionicDB reproduction — pipeline stages, the softcore,
DRAM, on-chip channels, the software baseline's CPU cores — runs as a
*process* inside one :class:`Engine`.  A process is a Python generator
that yields :class:`Event` objects (or plain numbers, treated as delays
in the engine's time unit) and is resumed when the yielded event fires.

The design follows the familiar SimPy structure but is implemented from
scratch so the simulation core has no external dependencies and stays
small enough to audit.  Time is a float measured in **nanoseconds**;
clock domains (:mod:`repro.sim.clock`) convert cycles to nanoseconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import BionicError, SimulatedCrash

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(BionicError, RuntimeError):
    """Raised for illegal engine operations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with :meth:`succeed`
    (delivering ``value`` to waiters) or :meth:`fail` (raising the given
    exception inside waiters).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "triggered", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self._scheduled = False

    # -- inspection ------------------------------------------------------
    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.engine._dispatch(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.engine._dispatch(self)
        return self


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(engine)
        self._value = value
        engine._schedule_at(engine.now + delay, self)


class Process(Event):
    """Runs a generator; as an Event it fires when the generator returns.

    The generator's ``return`` value becomes the event value.  If the
    generator raises, the process event fails with that exception, which
    propagates to any process waiting on it.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        super().__init__(engine)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off on the next dispatch round at the current time.
        start = Event(engine)
        start.callbacks.append(self._resume)
        start.succeed(None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        self._throw_in(Interrupt(cause))

    def kill(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current time.

        Unlike :meth:`interrupt` (which the process may catch and
        recover from), ``kill`` delivers an arbitrary exception — the
        crash-injection hook for modelling a hardware unit dying
        mid-flight."""
        if not isinstance(exc, BaseException):
            raise TypeError("kill() requires an exception instance")
        self._throw_in(exc)

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._waiting_on = None
        kicker = Event(self.engine)
        kicker.callbacks.append(lambda ev: self._step(exc, throw=True))
        kicker.succeed(None)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(event._exc, throw=True)
        else:
            self._step(event._value, throw=False)

    def _step(self, value: Any, throw: bool) -> None:
        if self.triggered:
            return
        try:
            if throw:
                yielded = self._gen.throw(value)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return
        try:
            event = self._coerce(yielded)
        except SimulationError as exc:
            self.fail(exc)
            return
        self._waiting_on = event
        if event.triggered:
            # Already fired: resume on the next dispatch round so other
            # same-time callbacks run first (prevents starvation loops).
            relay = Event(self.engine)
            relay.callbacks.append(lambda _ev: self._resume(event))
            relay.succeed(None)
        else:
            event.callbacks.append(self._resume)

    def _coerce(self, yielded: Any) -> Event:
        if isinstance(yielded, Event):
            return yielded
        if isinstance(yielded, (int, float)):
            return Timeout(self.engine, yielded)
        raise SimulationError(
            f"process {self.name!r} yielded {yielded!r}; expected Event or delay"
        )


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev.triggered:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is (event, value)."""

    __slots__ = ("_events",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf needs at least one event")
        for ev in self._events:
            if ev.triggered:
                self._on_child(ev)
                break
            ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((event, event._value))


class Engine:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._dispatching = False
        self._ready: list = []
        #: lifetime count of fired events (watchdog bookkeeping)
        self.events_fired: int = 0
        #: crash hook: when set, the run loop raises
        #: :class:`~repro.errors.SimulatedCrash` once ``events_fired``
        #: reaches this count — the whole-machine-dies fault site
        self.crash_at_fired: Optional[int] = None
        self._halted = False

    # -- public API ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute time ``when`` (≥ now)."""
        if when < self.now:
            raise SimulationError(f"call_at in the past: {when} < {self.now}")
        ev = Event(self)
        ev.callbacks.append(lambda _e: fn())
        self._schedule_at(when, ev)
        ev.triggered = True

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        ``max_events`` is a watchdog: if more than that many events fire
        in this call, raise :class:`SimulationError` instead of spinning
        the host forever on a runaway process (e.g. a stored procedure
        branching in an unconditional loop, which makes simulated
        progress on every iteration and so never trips ``until``).

        A call to :meth:`halt` from inside a callback stops the loop at
        the current time (the graceful stop hook); an armed
        ``crash_at_fired`` raises :class:`SimulatedCrash` instead (the
        machine-dies hook).
        """
        fired = 0
        self._halted = False
        while self._heap and not self._halted:
            when, _seq, event = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"watchdog: {fired} events fired without the heap "
                    f"draining — runaway process?", now_ns=self.now,
                    pending=len(self._heap))
            heapq.heappop(self._heap)
            self.now = when
            fired += 1
            self._fire(event)
            self._maybe_crash()
        if until is not None and not self._halted:
            self.now = max(self.now, until)
        return self.now

    def halt(self) -> None:
        """Stop the current :meth:`run` loop after the firing event's
        callbacks finish; pending events stay queued for the next run."""
        self._halted = True

    def run_until_done(self, done: Event, limit: float = float("inf")) -> float:
        """Run until ``done`` triggers; raise if the heap drains first."""
        while not done.triggered:
            if not self._heap:
                raise SimulationError("deadlock: event heap drained before done")
            when, _seq, event = heapq.heappop(self._heap)
            if when > limit:
                raise SimulationError(f"time limit {limit} exceeded")
            self.now = when
            self._fire(event)
            self._maybe_crash()
        return self.now

    def _maybe_crash(self) -> None:
        if (self.crash_at_fired is not None
                and self.events_fired >= self.crash_at_fired):
            self.crash_at_fired = None    # a machine crashes once
            raise SimulatedCrash("injected machine crash",
                                 site="machine.crash",
                                 events_fired=self.events_fired,
                                 now_ns=self.now)

    # -- internal --------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        event._scheduled = True
        heapq.heappush(self._heap, (when, self._seq, event))

    def _dispatch(self, event: Event) -> None:
        """Queue a freshly-triggered event's callbacks at the current time."""
        if event._scheduled:
            return  # it is in the heap; callbacks run when popped
        self._schedule_at(self.now, event)

    def _fire(self, event: Event) -> None:
        self.events_fired += 1
        if isinstance(event, Timeout):
            event.triggered = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(event)
