"""Execution tracing: a waveform-style event log for the simulator.

A :class:`Tracer` collects timestamped events from the components that
opt in (the softcore's instruction stream, index pipeline stages, the
communication channels).  Tracing is off by default and costs nothing
when disabled; enabled, it is the primary debugging tool for stored
procedures and pipeline behaviour:

    tracer = Tracer(categories={"softcore", "hash"})
    db = BionicDB(BionicConfig(tracer=tracer))
    ...
    print(tracer.format(limit=50))

Events carry (time_ns, category, source, message); ``format`` renders
them as aligned columns, ``filter`` slices by category/source/window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    time_ns: float
    category: str
    source: str
    message: str


class Tracer:
    """Collects trace events for a chosen set of categories.

    Known categories: ``softcore`` (instruction execution, batch
    phases), ``hash`` / ``skiplist`` (pipeline stage activity), ``comm``
    (message passing), ``txn`` (commit/abort decisions).
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: int = 100_000):
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._clock = None  # bound by the system at construction

    def bind_clock(self, clock) -> None:
        self._clock = clock

    #: plain class attribute (not a property) so the hot-path guard
    #: ``if tracer.enabled`` is a single attribute load when disabled
    enabled = True

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def emit(self, category: str, source: str, message: str) -> None:
        if not self.wants(category):
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        now = self._clock.engine.now if self._clock is not None else 0.0
        self.events.append(TraceEvent(now, category, source, message))

    # -- inspection --------------------------------------------------------
    def filter(self, category: Optional[str] = None,
               source: Optional[str] = None,
               since_ns: float = 0.0,
               until_ns: float = float("inf")) -> List[TraceEvent]:
        return [e for e in self.events
                if (category is None or e.category == category)
                and (source is None or e.source == source)
                and since_ns <= e.time_ns <= until_ns]

    def format(self, events: Optional[Sequence[TraceEvent]] = None,
               limit: Optional[int] = None, tail: bool = False) -> str:
        """Render events as aligned columns.

        ``limit`` truncates the listing; with ``tail=True`` the *last*
        ``limit`` events are kept instead of the first — the ones
        immediately before a failure, which is usually what a
        post-mortem needs.
        """
        events = list(self.events if events is None else events)
        if limit is not None:
            events = events[-limit:] if tail else events[:limit]
        lines = [f"{e.time_ns:12.1f} ns  {e.category:<9s} {e.source:<16s} "
                 f"{e.message}" for e in events]
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at capacity)")
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


class _NullTracer:
    """The default: tracing disabled, every call a cheap no-op.

    ``events`` is an immutable empty tuple on purpose: a class-level
    mutable list here would be shared by every system using the null
    tracer, so one accidental append would leak into all of them.
    """

    enabled = False
    events: Sequence[TraceEvent] = ()

    def bind_clock(self, _clock) -> None:
        pass

    def wants(self, _category: str) -> bool:
        return False

    def emit(self, _category: str, _source: str, _message: str) -> None:
        pass


NULL_TRACER = _NullTracer()
