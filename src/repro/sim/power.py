"""Power models — reproduces §5.8 of the paper.

The paper's FPGA number (≈11.5 W) comes from the Xilinx Power Estimator
(XPE), itself an analytic model over resource counts and activity.  We
mirror that: static device power plus activity-weighted dynamic power
per consumed FF/LUT/BRAM plus a fixed memory-interface/I/O term.  The
coefficients are calibrated so the paper's default 4-worker design on a
Virtex-5 LX330 lands at ≈11.5 W.

The CPU side uses the thermal design power ledger the paper uses: one
Xeon E7 4807 chip is 95 W TDP and hosts six cores; four chips = 380 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import ResourceLedger, ResourceVector

__all__ = ["FpgaPowerModel", "CpuPowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    static_w: float
    logic_dynamic_w: float
    bram_dynamic_w: float
    io_and_memory_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.logic_dynamic_w + self.bram_dynamic_w + self.io_and_memory_w


class FpgaPowerModel:
    """XPE-style estimate for a Virtex-5 class device (65 nm)."""

    def __init__(
        self,
        static_w: float = 3.2,
        lut_dynamic_w: float = 19.0e-6,
        ff_dynamic_w: float = 10.0e-6,
        bram_dynamic_w_per_block: float = 8.0e-3,
        io_and_memory_w: float = 2.45,
        reference_activity: float = 0.125,
    ):
        self.static_w = static_w
        self.lut_dynamic_w = lut_dynamic_w
        self.ff_dynamic_w = ff_dynamic_w
        self.bram_dynamic_w_per_block = bram_dynamic_w_per_block
        self.io_and_memory_w = io_and_memory_w
        self.reference_activity = reference_activity

    def estimate(self, ledger: ResourceLedger, activity: float | None = None) -> PowerReport:
        """Estimate total power for the design in ``ledger``.

        ``activity`` is the average toggle rate; XPE-style estimates are
        linear in it.  Defaults to the reference activity used for the
        headline 11.5 W figure.
        """
        act = self.reference_activity if activity is None else activity
        scale = act / self.reference_activity
        total: ResourceVector = ledger.design_total
        logic = (total.lut * self.lut_dynamic_w + total.ff * self.ff_dynamic_w) * scale
        bram = total.bram * self.bram_dynamic_w_per_block * scale
        return PowerReport(
            static_w=self.static_w,
            logic_dynamic_w=logic,
            bram_dynamic_w=bram,
            io_and_memory_w=self.io_and_memory_w,
        )


class CpuPowerModel:
    """TDP ledger for the Xeon E7 4807 baseline (6 cores / 95 W / chip)."""

    def __init__(self, tdp_per_chip_w: float = 95.0, cores_per_chip: int = 6):
        self.tdp_per_chip_w = tdp_per_chip_w
        self.cores_per_chip = cores_per_chip

    def chips_for(self, cores: int) -> int:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return -(-cores // self.cores_per_chip)  # ceil division

    def estimate_w(self, cores: int) -> float:
        return self.chips_for(cores) * self.tdp_per_chip_w
