"""FPGA resource ledger — reproduces Table 4 of the paper.

Every simulated hardware module registers its flip-flop (FF), look-up
table (LUT) and block-RAM (BRAM) consumption here.  Default per-module
figures are derived from Table 4 (which reports totals for a 4-worker
BionicDB on a Virtex-5 LX330) divided into per-worker and per-scalable-
component shares, so configurations with extra Traverse stages, deeper
skiplist pipelines or additional scanners are costed consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ResourceVector", "ResourceLedger", "VIRTEX5_LX330",
           "ULTRASCALE_PLUS", "HC2_INFRASTRUCTURE", "F1_SHELL", "DEVICES",
           "per_worker_costs"]


@dataclass(frozen=True)
class ResourceVector:
    """A (FF, LUT, BRAM) triple; supports + and integer *."""

    ff: int = 0
    lut: int = 0
    bram: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.ff + other.ff, self.lut + other.lut,
                              self.bram + other.bram)

    def __mul__(self, n: int) -> "ResourceVector":
        return ResourceVector(self.ff * n, self.lut * n, self.bram * n)

    __rmul__ = __mul__

    def fits_in(self, device: "ResourceVector") -> bool:
        return self.ff <= device.ff and self.lut <= device.lut and self.bram <= device.bram


#: The target device of the paper: Xilinx Virtex-5 LX330.
VIRTEX5_LX330 = ResourceVector(ff=207_360, lut=207_360, bram=288)

#: A datacenter-grade device (Virtex Ultrascale+ VU9P class, as in AWS
#: F1) — the §5.2/§7 scale-up target "that could accommodate tens or
#: hundreds of BionicDB workers".
ULTRASCALE_PLUS = ResourceVector(ff=2_364_480, lut=1_182_240, bram=2_160)

#: Convey HC-2 platform infrastructure (host interface, crossbar memory
#: interconnect, vendor processor) — consumed but unused by BionicDB.
HC2_INFRASTRUCTURE = ResourceVector(ff=98_507, lut=76_639, bram=103)

#: An F1-style shell (DMA, PCIe, DDR controllers) for the scale-up study.
F1_SHELL = ResourceVector(ff=250_000, lut=180_000, bram=300)

DEVICES = {
    "virtex5": (VIRTEX5_LX330, HC2_INFRASTRUCTURE),
    "ultrascale_plus": (ULTRASCALE_PLUS, F1_SHELL),
}


def per_worker_costs() -> Dict[str, ResourceVector]:
    """Per-worker module costs, decomposed from Table 4 (4 workers).

    Table 4 totals (4 workers): hash 12,932/14,504/24; skiplist
    27,300/35,968/36; softcore 7,080/8,796/12; catalogue 1,484/1,964/8;
    communication 2,482/3,191/8; memory arbiters 1,192/5,800/0.
    Scalable sub-components (extra Traverse stages, skiplist stages,
    scanners) carry their own vectors so ablation configs are costed.
    """
    return {
        # hash pipeline: 5 fixed stages + lock table; one Traverse stage
        # included in the per-worker base, extras cost hash.traverse.
        "hash.base": ResourceVector(ff=2783, lut=3126, bram=5),
        "hash.traverse": ResourceVector(ff=450, lut=500, bram=1),
        # skiplist: base control + per-stage + per-scanner
        "skiplist.base": ResourceVector(ff=925, lut=1292, bram=0),
        "skiplist.stage": ResourceVector(ff=650, lut=850, bram=1),
        "skiplist.scanner": ResourceVector(ff=700, lut=900, bram=1),
        # B+ tree: base control (wave former + node cache tags) + per-stage
        "bptree.base": ResourceVector(ff=1040, lut=1380, bram=1),
        "bptree.stage": ResourceVector(ff=720, lut=940, bram=2),
        "softcore": ResourceVector(ff=1770, lut=2199, bram=3),
        "catalogue": ResourceVector(ff=371, lut=491, bram=2),
        "communication": ResourceVector(ff=620, lut=798, bram=2),
        "memory_arbiter": ResourceVector(ff=298, lut=1450, bram=0),
    }


@dataclass
class ResourceLedger:
    """Accumulates module instances and checks device fit."""

    device: ResourceVector = VIRTEX5_LX330
    include_platform: bool = True
    platform: ResourceVector = HC2_INFRASTRUCTURE
    entries: List = field(default_factory=list)  # (module, instance, vec)

    def add(self, module: str, vec: ResourceVector, instance: str = "") -> None:
        self.entries.append((module, instance, vec))

    def module_total(self, module: str) -> ResourceVector:
        total = ResourceVector()
        for mod, _inst, vec in self.entries:
            if mod == module:
                total = total + vec
        return total

    def modules(self) -> List[str]:
        seen: List[str] = []
        for mod, _inst, _vec in self.entries:
            if mod not in seen:
                seen.append(mod)
        return seen

    @property
    def design_total(self) -> ResourceVector:
        total = ResourceVector()
        for _mod, _inst, vec in self.entries:
            total = total + vec
        if self.include_platform:
            total = total + self.platform
        return total

    @property
    def bionicdb_total(self) -> ResourceVector:
        total = ResourceVector()
        for _mod, _inst, vec in self.entries:
            total = total + vec
        return total

    def utilization(self) -> Dict[str, float]:
        t = self.design_total
        return {
            "ff": t.ff / self.device.ff,
            "lut": t.lut / self.device.lut,
            "bram": t.bram / self.device.bram,
        }

    def fits(self) -> bool:
        return self.design_total.fits_in(self.device)

    def table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table 4 of the paper."""
        rows: List[Dict[str, object]] = []
        for mod in self.modules():
            vec = self.module_total(mod)
            rows.append({"module": mod, "ff": vec.ff, "lut": vec.lut, "bram": vec.bram})
        if self.include_platform:
            name = ("HC-2 modules" if self.platform is HC2_INFRASTRUCTURE
                    else "Platform shell")
            rows.append({"module": name, "ff": self.platform.ff,
                         "lut": self.platform.lut, "bram": self.platform.bram})
        total = self.design_total
        rows.append({"module": "Total", "ff": total.ff, "lut": total.lut,
                     "bram": total.bram})
        util = self.utilization()
        rows.append({"module": "Utilization", "ff": round(util["ff"], 3),
                     "lut": round(util["lut"], 3), "bram": round(util["bram"], 3)})
        return rows
