"""Drives the Silo baseline with the same workloads as BionicDB.

The YCSB and TPC-C generators emit :class:`repro.workloads.TxnSpec`
descriptors; this module installs equivalent Silo tables and turns each
spec into a transaction body, so both systems execute identical request
streams (§5.3/§5.4 comparisons).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..workloads.tpcc import schema as T
from ..workloads.tpcc.schema import TpccConfig
from ..workloads.ycsb import TxnSpec, YCSB_TABLE, YcsbConfig
from .memory_model import XeonModel
from .silo import IndexStructure, SiloEngine, SiloReport, SiloTable, SiloTxn

__all__ = ["SiloYcsb", "SiloTpcc"]

# TPC-C row sizes in bytes (from the spec's record layouts)
_TPCC_ROW_BYTES = {
    T.WAREHOUSE: 89, T.DISTRICT: 95, T.CUSTOMER: 655, T.ITEM: 82,
    T.STOCK: 306, T.ORDERS: 24, T.NEW_ORDER: 8, T.ORDER_LINE: 54,
    T.HISTORY: 46,
}


class SiloYcsb:
    """YCSB over Silo; the usertable structure is selectable so the
    Figure 11d scan comparison can run Masstree vs software skiplist."""

    #: the paper's scale: 300 K rows per partition.  The cost model is
    #: pinned to it so scaled-down functional runs still see paper-scale
    #: cache behaviour.
    PAPER_ROWS_PER_PARTITION = 300_000

    def __init__(self, config: Optional[YcsbConfig] = None, n_cores: int = 4,
                 structure: str = IndexStructure.MASSTREE,
                 model: Optional[XeonModel] = None,
                 model_rows: Optional[int] = None):
        self.config = config or YcsbConfig()
        self.silo = SiloEngine(n_cores, model=model)
        if model_rows is None:
            model_rows = (self.PAPER_ROWS_PER_PARTITION
                          * self.config.n_partitions)
        self.table = self.silo.create_table(SiloTable(
            YCSB_TABLE, "usertable", structure=structure, row_bytes=1024,
            expected_rows=max(model_rows, self.config.total_records)))

    def install(self) -> None:
        for key in range(self.config.total_records):
            self.silo.load(YCSB_TABLE, key, self.config.payload)

    # -- spec -> body translation ---------------------------------------
    def body_for(self, spec: TxnSpec) -> Callable[[SiloTxn], None]:
        if spec.kind == "read":
            keys = spec.keys

            def read_body(txn: SiloTxn) -> None:
                for key in keys:
                    txn.read(self.table, key)
            return read_body
        if spec.kind == "rmw":
            keys = spec.keys
            values = spec.inputs[len(keys):]

            def rmw_body(txn: SiloTxn) -> None:
                for key, value in zip(keys, values):
                    txn.read(self.table, key)
                    txn.write(self.table, key, value)
            return rmw_body
        if spec.kind == "scan":
            start = spec.keys[0]
            count = self.config.scan_length

            def scan_body(txn: SiloTxn) -> None:
                txn.scan(self.table, start, count)
            return scan_body
        if spec.kind == "mix":
            keys = spec.keys
            n_upd = len(spec.inputs) - len(keys)
            n_reads = len(keys) - n_upd
            values = spec.inputs[len(keys):]

            def mix_body(txn: SiloTxn) -> None:
                for key in keys[:n_reads]:
                    txn.read(self.table, key)
                for key, value in zip(keys[n_reads:], values):
                    txn.read(self.table, key)
                    txn.write(self.table, key, value)
            return mix_body
        raise ValueError(f"unknown YCSB spec kind {spec.kind!r}")

    def run(self, specs: Sequence[TxnSpec]) -> SiloReport:
        return self.silo.run_transactions([self.body_for(s) for s in specs])


class SiloTpcc:
    """TPC-C (NewOrder + Payment) over Silo."""

    def __init__(self, config: Optional[TpccConfig] = None, n_cores: int = 4,
                 model: Optional[XeonModel] = None):
        self.config = config or TpccConfig()
        self.silo = SiloEngine(n_cores, model=model)
        cfg = self.config
        # cost-model scale is pinned to full TPC-C (items=100 K,
        # customers=3000/district) so reduced functional scales still
        # price like the paper's databases
        full_items = max(cfg.items, 100_000)
        full_customers = max(cfg.customers_per_district, 3000)
        expected = {
            T.WAREHOUSE: cfg.n_warehouses,
            T.DISTRICT: cfg.n_warehouses * cfg.districts_per_warehouse,
            T.CUSTOMER: (cfg.n_warehouses * cfg.districts_per_warehouse
                         * full_customers),
            T.ITEM: full_items,
            T.STOCK: cfg.n_warehouses * full_items,
            T.ORDERS: 1 << 18, T.NEW_ORDER: 1 << 18,
            T.ORDER_LINE: 1 << 21, T.HISTORY: 1 << 18,
        }
        self.tables = {}
        for table_id, rows in expected.items():
            # ORDERS/ORDER_LINE need ordered access in full TPC-C; the
            # NewOrder/Payment mix only does point ops, so Masstree
            # everywhere mirrors Silo's actual storage.
            self.tables[table_id] = self.silo.create_table(SiloTable(
                table_id, f"t{table_id}", structure=IndexStructure.MASSTREE,
                row_bytes=_TPCC_ROW_BYTES[table_id], expected_rows=rows))
        self._next_hid = 0

    def install(self) -> None:
        cfg = self.config
        import random
        rng = random.Random(cfg.seed + 1)
        for i in range(1, cfg.items + 1):
            self.silo.load(T.ITEM, i, [f"item{i}", rng.randint(1, 100)])
        for w in range(1, cfg.n_warehouses + 1):
            self.silo.load(T.WAREHOUSE, T.warehouse_key(w),
                           [f"w{w}", rng.randint(0, 20) / 100.0, 0])
            for i in range(1, cfg.items + 1):
                self.silo.load(T.STOCK, T.stock_key(w, i),
                               [rng.randint(10, 100), 0, 0])
            for d in range(1, cfg.districts_per_warehouse + 1):
                self.silo.load(T.DISTRICT, T.district_key(w, d),
                               [rng.randint(0, 20) / 100.0, 0, 1, 1])
                for c in range(1, cfg.customers_per_district + 1):
                    self.silo.load(T.CUSTOMER, T.customer_key(w, d, c),
                                   [f"c{w}.{d}.{c}", 0, 0, 0, 0])

    # -- spec -> body translation ------------------------------------------
    def body_for(self, spec: TxnSpec) -> Callable[[SiloTxn], None]:
        if spec.kind == "payment":
            return self._payment_body(spec)
        if spec.kind == "neworder":
            return self._neworder_body(spec)
        raise ValueError(f"unknown TPC-C spec kind {spec.kind!r}")

    def _payment_body(self, spec: TxnSpec) -> Callable[[SiloTxn], None]:
        w, d, cw, cd, c, amount, h_key = spec.keys
        tables = self.tables

        def body(txn: SiloTxn) -> None:
            from .silo import SiloAbort
            wrow = txn.read(tables[T.WAREHOUSE], T.warehouse_key(w),
                            copy_payload=False)
            txn.write(tables[T.WAREHOUSE], T.warehouse_key(w),
                      [wrow[0], wrow[1], wrow[2] + amount])
            drow = txn.read(tables[T.DISTRICT], T.district_key(w, d),
                            copy_payload=False)
            txn.write(tables[T.DISTRICT], T.district_key(w, d),
                      [drow[0], drow[1] + amount] + list(drow[2:]))
            ckey = T.customer_key(cw, cd, c)
            crow = txn.read(tables[T.CUSTOMER], ckey, copy_payload=False)
            txn.write(tables[T.CUSTOMER], ckey,
                      [crow[0], crow[1] - amount, crow[2], crow[3] + 1]
                      + list(crow[4:]))
            txn.insert(tables[T.HISTORY], h_key, [amount, f"pay w{w} d{d}"])
        return body

    def _neworder_body(self, spec: TxnSpec) -> Callable[[SiloTxn], None]:
        w, d, c, K, items, supplies, qtys = spec.keys
        tables = self.tables

        def body(txn: SiloTxn) -> None:
            txn.read(tables[T.WAREHOUSE], T.warehouse_key(w),
                     copy_payload=False)
            txn.read(tables[T.CUSTOMER], T.customer_key(w, d, c),
                     copy_payload=False)
            dkey = T.district_key(w, d)
            drow = txn.read(tables[T.DISTRICT], dkey, copy_payload=False)
            o_id = drow[2]
            txn.write(tables[T.DISTRICT], dkey,
                      [drow[0], drow[1], o_id + 1] + list(drow[3:]))
            okey = T.orders_key(w, d, o_id)
            txn.insert(tables[T.ORDERS], okey, [c, K, 20190326])
            txn.insert(tables[T.NEW_ORDER], okey, [])
            total = 0
            for i in range(K):
                irow = txn.read(tables[T.ITEM], items[i], copy_payload=False)
                total += irow[1] * qtys[i]
                skey = T.stock_key(supplies[i], items[i])
                srow = txn.read(tables[T.STOCK], skey, copy_payload=False)
                qty = srow[0] - qtys[i]
                if qty < 10:
                    qty += 91
                txn.write(tables[T.STOCK], skey, [qty, srow[1], srow[2] + 1])
                txn.insert(tables[T.ORDER_LINE],
                           T.order_line_key(okey, i + 1),
                           [items[i], qtys[i], 0])
        return body

    def run(self, specs: Sequence[TxnSpec]) -> SiloReport:
        return self.silo.run_transactions([self.body_for(s) for s in specs])
