"""A B+-tree — the baseline's Masstree stand-in.

Masstree is a trie of B+-trees; for fixed-width integer keys (all our
workloads) it degenerates to a single B+-tree layer, so a real B+-tree
is the right functional model.  Node fanout mirrors Masstree's 15-way
nodes; ``depth`` drives the probe cost model.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]

FANOUT = 15


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[Any] = []
        self.children: List[Any] = []


class BPlusTree:
    """Sorted map with range scans over a linked leaf level."""

    def __init__(self, fanout: int = FANOUT):
        if fanout < 3:
            raise ValueError("fanout must be >= 3")
        self.fanout = fanout
        self._root: Any = _Leaf()
        self._depth = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        return self._depth

    # -- lookup ----------------------------------------------------------
    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key, default=None):
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insert -----------------------------------------------------------
    def insert(self, key, value) -> bool:
        """Insert; returns False (no-op) if the key already exists."""
        path: List[Tuple[_Inner, int]] = []
        node = self._root
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1
        # split upward while overflowing
        child: Any = node
        while len(child.keys) > self.fanout:
            sep, right = self._split(child)
            if path:
                parent, pidx = path.pop()
                parent.keys.insert(pidx, sep)
                parent.children.insert(pidx + 1, right)
                child = parent
            else:
                root = _Inner()
                root.keys = [sep]
                root.children = [child, right]
                self._root = root
                self._depth += 1
                break
        return True

    def put(self, key, value) -> None:
        """Insert or overwrite."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
        else:
            self.insert(key, value)

    @staticmethod
    def _split(node):
        mid = len(node.keys) // 2
        if isinstance(node, _Leaf):
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            right.next = node.next
            node.next = right
            return right.keys[0], right
        right = _Inner()
        sep = node.keys[mid]
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- delete ------------------------------------------------------------
    def remove(self, key) -> bool:
        """Delete a key (leaves may underflow; acceptable for OLTP rows
        that are tombstoned rather than physically merged)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._size -= 1
            return True
        return False

    # -- scan ----------------------------------------------------------------
    def scan_from(self, key, count: int) -> List[Tuple[Any, Any]]:
        """Up to ``count`` (key, value) pairs with key >= ``key``."""
        out: List[Tuple[Any, Any]] = []
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        while leaf is not None and len(out) < count:
            while idx < len(leaf.keys) and len(out) < count:
                out.append((leaf.keys[idx], leaf.values[idx]))
                idx += 1
            leaf = leaf.next
            idx = 0
        return out

    def scan_range(self, lo, hi, limit: Optional[int] = None
                   ) -> List[Tuple[Any, Any]]:
        """(key, value) pairs with ``lo <= key <= hi`` (inclusive both
        ends, matching the RANGE_SCAN instruction), at most ``limit``."""
        out: List[Tuple[Any, Any]] = []
        leaf = self._find_leaf(lo)
        idx = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                if leaf.keys[idx] > hi:
                    return out
                if limit is not None and len(out) >= limit:
                    return out
                out.append((leaf.keys[idx], leaf.values[idx]))
                idx += 1
            leaf = leaf.next
            idx = 0
        return out

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def leaves_touched(self, count: int) -> int:
        """How many leaf nodes a count-long scan crosses (cost model)."""
        per_leaf = max(1, self.fanout // 2)
        return -(-count // per_leaf)
