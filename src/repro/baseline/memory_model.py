"""Xeon E7 4807 cost model for the software baseline (§5.2).

The baseline engine executes *real* data-structure operations (so
correctness, conflicts and aborts are genuine); simulated time is
charged from this model.  The paper's comparison CPU is a 1.87 GHz
Xeon E7 4807: 32 KB L1, 256 KB L2, 18 MB shared L3, DDR3 DRAM.

The central quantity is the cost of touching one 64-byte line.  OLTP
probes are dependent pointer chases (the paper's whole motivation), so
line touches serialise; a *streamed* touch (sequentially allocated
nodes, e.g. a software skiplist's bottom level built in key order) is
prefetch-friendly and far cheaper — this asymmetry is what makes the
software skiplist 5x faster than the hardware scan in Figure 11d.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["XeonModel"]

LINE_BYTES = 64


@dataclass
class XeonModel:
    freq_ghz: float = 1.87
    l1_ns: float = 2.0
    l2_ns: float = 6.0
    l3_ns: float = 20.0
    dram_ns: float = 80.0
    streamed_line_ns: float = 18.0     # prefetcher-friendly sequential touch
    l3_bytes: int = 18 * 1024 * 1024
    #: per-instruction cost for the non-memory work of one DB operation
    op_overhead_ns: float = 25.0
    #: transaction begin/commit bookkeeping (timestamp, logging elide)
    txn_overhead_ns: float = 120.0
    #: per-read-set-entry OCC validation cost
    validate_entry_ns: float = 8.0
    #: DRAM queueing under multi-core load: latency inflates toward
    #: (1 + contention_span) as active cores grow; this saturating shape
    #: reproduces Silo's mildly sublinear scaling (Fig. 9a: 6x the cores
    #: buy ~4.5x the throughput)
    contention_span: float = 0.75
    contention_cores_scale: float = 6.0
    active_cores: int = 1
    #: how much of a random payload copy the line-fill burst overlaps
    payload_overlap: float = 0.95

    def cycles_ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    @property
    def loaded_dram_ns(self) -> float:
        """DRAM latency under the current core count's load."""
        inflate = 1.0 + self.contention_span * (
            1.0 - math.exp(-(self.active_cores - 1) / self.contention_cores_scale))
        return self.dram_ns * inflate

    def resident_fraction(self, working_set_bytes: int) -> float:
        """Fraction of a structure's lines expected to sit in L3."""
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.l3_bytes / working_set_bytes)

    def line_ns(self, working_set_bytes: int) -> float:
        """Expected cost of one dependent line touch into a structure
        of the given size (L3-resident fraction hits at L3 cost)."""
        f = self.resident_fraction(working_set_bytes)
        return f * self.l3_ns + (1.0 - f) * self.loaded_dram_ns

    def random_lines_ns(self, n_lines: int, working_set_bytes: int) -> float:
        """n dependent line touches (no overlap: pointer chase)."""
        return n_lines * self.line_ns(working_set_bytes)

    def streamed_lines_ns(self, n_lines: int) -> float:
        """n sequential line touches (prefetcher hides most latency)."""
        return n_lines * self.streamed_line_ns

    def payload_ns(self, payload_bytes: int, streamed: bool = False) -> float:
        lines = max(1, (payload_bytes + LINE_BYTES - 1) // LINE_BYTES)
        if streamed:
            return self.streamed_lines_ns(lines)
        return lines * self.loaded_dram_ns * self.payload_overlap
