"""A software skiplist — the other scan competitor of Figure 11d.

A classic Pugh skiplist.  Its bottom level, when loaded in key order,
is laid out sequentially in memory, which makes long scans prefetch-
friendly — the property that lets it outrun both Masstree and the
hardware skiplist on pure scans in the paper's comparison.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["SoftwareSkiplist"]

MAX_HEIGHT = 20


class _Node:
    __slots__ = ("key", "value", "nexts")

    def __init__(self, key, value, height: int):
        self.key = key
        self.value = value
        self.nexts: List[Optional["_Node"]] = [None] * height


class SoftwareSkiplist:
    def __init__(self, max_height: int = MAX_HEIGHT, seed: int = 0x51):
        self.max_height = max_height
        self._rng = random.Random(seed)
        self._head = _Node(None, None, max_height)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _height(self) -> int:
        h = 1
        while h < self.max_height and self._rng.random() < 0.5:
            h += 1
        return h

    def _find_preds(self, key) -> List[_Node]:
        preds = [self._head] * self.max_height
        node = self._head
        for level in range(self.max_height - 1, -1, -1):
            nxt = node.nexts[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[level]
            preds[level] = node
        return preds

    def search_path_length(self, key) -> int:
        """Node hops a search for ``key`` performs (cost model input)."""
        hops = 0
        node = self._head
        for level in range(self.max_height - 1, -1, -1):
            nxt = node.nexts[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[level]
                hops += 1
            hops += 1
        return hops

    def get(self, key, default=None):
        preds = self._find_preds(key)
        node = preds[0].nexts[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key, value) -> bool:
        preds = self._find_preds(key)
        node = preds[0].nexts[0]
        if node is not None and node.key == key:
            return False
        height = self._height()
        new = _Node(key, value, height)
        for level in range(height):
            new.nexts[level] = preds[level].nexts[level]
            preds[level].nexts[level] = new
        self._size += 1
        return True

    def put(self, key, value) -> None:
        preds = self._find_preds(key)
        node = preds[0].nexts[0]
        if node is not None and node.key == key:
            node.value = value
        else:
            self.insert(key, value)

    def remove(self, key) -> bool:
        preds = self._find_preds(key)
        node = preds[0].nexts[0]
        if node is None or node.key != key:
            return False
        for level in range(len(node.nexts)):
            if preds[level].nexts[level] is node:
                preds[level].nexts[level] = node.nexts[level]
        self._size -= 1
        return True

    def scan_from(self, key, count: int) -> List[Tuple[Any, Any]]:
        preds = self._find_preds(key)
        node = preds[0].nexts[0]
        out: List[Tuple[Any, Any]] = []
        while node is not None and len(out) < count:
            out.append((node.key, node.value))
            node = node.nexts[0]
        return out

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]
