"""The software baseline: a Silo-style OCC engine on a modeled Xeon."""

from .bptree import BPlusTree
from .memory_model import XeonModel
from .runner import SiloTpcc, SiloYcsb
from .silo import (
    IndexStructure, SiloAbort, SiloEngine, SiloRecord, SiloReport, SiloTable,
    SiloTxn,
)
from .swskiplist import SoftwareSkiplist

__all__ = [
    "BPlusTree", "XeonModel", "SiloTpcc", "SiloYcsb",
    "IndexStructure", "SiloAbort", "SiloEngine", "SiloRecord",
    "SiloReport", "SiloTable", "SiloTxn", "SoftwareSkiplist",
]
