"""A Silo-style OCC engine — the paper's software comparison system.

Silo [Tu et al., SOSP'13] is a shared-everything in-memory OLTP engine
with optimistic concurrency control: transactions read record TIDs
optimistically, buffer writes, then commit by locking the write set,
re-validating the read set and installing new TIDs.

This implementation is *functional* — real indexes (chained hash,
B+-tree standing in for Masstree, software skiplist), real TID
validation, real aborts — and *timed* by the calibrated Xeon model
(:mod:`repro.baseline.memory_model`).  Worker cores are processes in
the same discrete-event engine as BionicDB, so both systems are
measured on one timeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo
from .bptree import BPlusTree
from .memory_model import XeonModel
from .swskiplist import SoftwareSkiplist

__all__ = ["SiloRecord", "SiloTable", "SiloTxn", "SiloAbort", "SiloEngine",
           "SiloReport", "IndexStructure"]


class SiloAbort(Exception):
    """OCC validation failure; the worker retries the transaction."""


class IndexStructure:
    HASH = "hash"
    MASSTREE = "masstree"
    SKIPLIST = "skiplist"


class SiloRecord:
    __slots__ = ("value", "tid", "locked_by", "deleted")

    def __init__(self, value: Any, tid: int = 0):
        self.value = value
        self.tid = tid
        self.locked_by: Optional[int] = None
        self.deleted = False


class SiloTable:
    """One table: a concurrent index mapping key -> SiloRecord."""

    def __init__(self, table_id: int, name: str,
                 structure: str = IndexStructure.MASSTREE,
                 row_bytes: int = 100, expected_rows: int = 1 << 16):
        self.table_id = table_id
        self.name = name
        self.structure = structure
        self.row_bytes = row_bytes
        self.expected_rows = expected_rows
        if structure == IndexStructure.HASH:
            self._index: Any = {}
        elif structure == IndexStructure.MASSTREE:
            self._index = BPlusTree()
        elif structure == IndexStructure.SKIPLIST:
            self._index = SoftwareSkiplist()
        else:
            raise ValueError(f"unknown index structure {structure!r}")

    def __len__(self) -> int:
        return len(self._index)

    # -- functional operations -------------------------------------------
    def get_record(self, key) -> Optional[SiloRecord]:
        if self.structure == IndexStructure.HASH:
            return self._index.get(key)
        return self._index.get(key)

    def install(self, key, record: SiloRecord) -> bool:
        if self.structure == IndexStructure.HASH:
            if key in self._index:
                return False
            self._index[key] = record
            return True
        return self._index.insert(key, record)

    def scan_records(self, key, count: int) -> List[Tuple[Any, SiloRecord]]:
        if self.structure == IndexStructure.HASH:
            raise TypeError("hash tables do not support scans")
        return self._index.scan_from(key, count)

    # -- cost model hooks ---------------------------------------------------
    def working_set_bytes(self) -> int:
        n = max(len(self._index), self.expected_rows)
        return n * (self.row_bytes + 64)  # row + index node amortisation

    def probe_lines(self, key=None) -> int:
        """Dependent line touches for one point probe.

        Tree depth is taken at the *modelled* row count (``expected_rows``
        is pinned to paper scale) so scaled-down functional trees still
        price like full-size ones.
        """
        if self.structure == IndexStructure.HASH:
            return 2                      # bucket + record header
        if self.structure == IndexStructure.MASSTREE:
            import math
            model_depth = max(1, math.ceil(
                math.log(max(2, self.expected_rows), self._index.fanout)))
            return max(self._index.depth, model_depth) + 1
        # skiplist: the actual search path for this key
        hops = self._index.search_path_length(key) if key is not None else 24
        return max(2, hops // 2)          # two towers per line on average


@dataclass
class SiloReport:
    committed: int
    aborted: int
    elapsed_ns: float

    @property
    def throughput_tps(self) -> float:
        return self.committed / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0


class SiloTxn:
    """One transaction attempt: optimistic reads, buffered writes."""

    _tid_counter = itertools.count(1)

    def __init__(self, silo: "SiloEngine", worker_id: int):
        self.silo = silo
        self.model = silo.model
        self.worker_id = worker_id
        self.read_set: List[Tuple[SiloRecord, int]] = []
        self.write_set: List[Tuple[SiloTable, Any, Optional[SiloRecord], Any, bool]] = []
        self.cost_ns = self.model.txn_overhead_ns

    # -- operations (functional + cost accumulation) ----------------------
    def read(self, table: SiloTable, key, copy_payload: bool = True) -> Any:
        self.cost_ns += self.model.op_overhead_ns
        self.cost_ns += self.model.random_lines_ns(
            table.probe_lines(key), table.working_set_bytes())
        record = table.get_record(key)
        if record is None or record.deleted:
            return None
        if record.locked_by is not None and record.locked_by != self.worker_id:
            raise SiloAbort("read of write-locked record")
        self.read_set.append((record, record.tid))
        if copy_payload:
            self.cost_ns += self.model.payload_ns(table.row_bytes)
        # an uncommitted overwrite by ourselves?
        for wtable, wkey, wrec, wvalue, _ins in self.write_set:
            if wrec is record:
                return wvalue
        return record.value

    def write(self, table: SiloTable, key, value) -> bool:
        self.cost_ns += self.model.op_overhead_ns
        self.cost_ns += self.model.random_lines_ns(
            table.probe_lines(key), table.working_set_bytes())
        record = table.get_record(key)
        if record is None or record.deleted:
            return False
        self.read_set.append((record, record.tid))
        self.write_set.append((table, key, record, value, False))
        return True

    def insert(self, table: SiloTable, key, value) -> None:
        self.cost_ns += self.model.op_overhead_ns
        self.cost_ns += self.model.random_lines_ns(
            table.probe_lines(key) + 1, table.working_set_bytes())
        self.write_set.append((table, key, None, value, True))

    def scan(self, table: SiloTable, key, count: int) -> List[Any]:
        self.cost_ns += self.model.op_overhead_ns
        self.cost_ns += self.model.random_lines_ns(
            table.probe_lines(key), table.working_set_bytes())
        pairs = table.scan_records(key, count)
        out = []
        streamed = table.structure == IndexStructure.SKIPLIST
        for _k, record in pairs:
            if record.deleted:
                continue
            if record.locked_by is not None and record.locked_by != self.worker_id:
                raise SiloAbort("scan crossed a locked record")
            self.read_set.append((record, record.tid))
            self.cost_ns += self.model.validate_entry_ns
            if streamed:
                # sequential bottom-level nodes + payload stream
                self.cost_ns += self.model.payload_ns(
                    table.row_bytes + 32, streamed=True)
            else:
                # leaf hop amortised + random payload copy
                self.cost_ns += self.model.line_ns(table.working_set_bytes()) * 0.3
                self.cost_ns += self.model.payload_ns(table.row_bytes)
            out.append(record.value)
        return out

    # -- commit protocol (Silo §3: lock, validate, install) --------------------
    def lock_and_validate(self) -> None:
        """Phase 1 + 2.  Raises :class:`SiloAbort` (after releasing any
        locks taken) on conflict; on success the write set stays locked
        until :meth:`install_and_unlock`."""
        model = self.model
        self._locked: List[SiloRecord] = []
        try:
            for _table, _key, record, _value, is_insert in sorted(
                    self.write_set, key=lambda e: id(e[2]) if e[2] else 0):
                if is_insert:
                    continue
                if record.locked_by is not None and record.locked_by != self.worker_id:
                    raise SiloAbort("write-lock conflict")
                if record.locked_by is None:
                    record.locked_by = self.worker_id
                    self._locked.append(record)
                self.cost_ns += model.l3_ns  # CAS on the TID word
            for record, seen_tid in self.read_set:
                self.cost_ns += model.validate_entry_ns
                if record.tid != seen_tid:
                    raise SiloAbort("read-set TID changed")
                if record.locked_by is not None and record.locked_by != self.worker_id:
                    raise SiloAbort("read-set record locked")
        except SiloAbort:
            self.release_locks()
            raise

    def install_and_unlock(self) -> None:
        """Phase 3: install new TIDs and values, then unlock."""
        model = self.model
        try:
            tid = next(self._tid_counter)
            for table, key, record, value, is_insert in self.write_set:
                if is_insert:
                    new = SiloRecord(value, tid)
                    if not table.install(key, new):
                        raise SiloAbort("duplicate insert")
                    self.cost_ns += model.line_ns(table.working_set_bytes())
                else:
                    record.value = value
                    record.tid = tid
                    self.cost_ns += model.payload_ns(table.row_bytes) * 0.5
        finally:
            self.release_locks()

    def release_locks(self) -> None:
        for record in getattr(self, "_locked", []):
            if record.locked_by == self.worker_id:
                record.locked_by = None
        self._locked = []


class SiloEngine:
    """N worker cores over shared tables, inside a DES."""

    def __init__(self, n_cores: int, model: Optional[XeonModel] = None,
                 engine: Optional[Engine] = None,
                 stats: Optional[StatsRegistry] = None):
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        self.n_cores = n_cores
        self.model = model or XeonModel()
        self.model.active_cores = n_cores
        self.engine = engine or Engine()
        self.clock = ClockDomain(self.engine, self.model.freq_ghz * 1000.0,
                                 name="xeon")
        self.stats = stats or StatsRegistry()
        self.tables: Dict[int, SiloTable] = {}
        self._committed = self.stats.counter("silo.committed")
        self._aborted = self.stats.counter("silo.aborted")

    # -- schema / loading ----------------------------------------------------
    def create_table(self, table: SiloTable) -> SiloTable:
        if table.table_id in self.tables:
            raise ValueError(f"duplicate table {table.table_id}")
        self.tables[table.table_id] = table
        return table

    def load(self, table_id: int, key, value) -> None:
        table = self.tables[table_id]
        if not table.install(key, SiloRecord(value)):
            raise ValueError(f"duplicate key {key!r} in load")

    # -- execution ----------------------------------------------------------
    def run_transactions(self, bodies: Sequence[Callable[[SiloTxn], None]],
                         max_retries: int = 100) -> SiloReport:
        """Execute transaction bodies across the cores; each body is a
        callable taking a :class:`SiloTxn` and issuing operations."""
        queue = Fifo(self.engine, name="silo.work")
        for body in bodies:
            queue.put(body)
        start_committed = self._committed.value
        start_aborted = self._aborted.value
        start_ns = self.engine.now

        def worker(worker_id: int):
            while True:
                ok, body = queue.try_get()
                if not ok:
                    return
                for _attempt in range(max_retries):
                    txn = SiloTxn(self, worker_id)
                    try:
                        body(txn)                       # functional execution
                    except SiloAbort:
                        self._aborted.add()
                        yield txn.cost_ns
                        continue
                    yield txn.cost_ns                       # execution time
                    pre = txn.cost_ns
                    try:
                        txn.lock_and_validate()
                    except SiloAbort:
                        self._aborted.add()
                        yield txn.cost_ns - pre
                        continue
                    # hold the locks for the validate/install window
                    yield txn.cost_ns - pre
                    try:
                        txn.install_and_unlock()
                    except SiloAbort:
                        self._aborted.add()
                        continue
                    self._committed.add()
                    break
                else:
                    raise RuntimeError("transaction exceeded retry budget")

        for c in range(self.n_cores):
            self.engine.process(worker(c), name=f"silo.core{c}")
        self.engine.run()
        return SiloReport(
            committed=self._committed.value - start_committed,
            aborted=self._aborted.value - start_aborted,
            elapsed_ns=self.engine.now - start_ns,
        )
