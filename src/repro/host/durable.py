"""Durable-file plumbing for the host's recovery artifacts (§4.8).

The command log and checkpoint are the *only* state that survives a
crash, so they get the treatment real recovery files get:

* **Atomic replace** — content is written to a temporary file in the
  same directory, flushed and fsynced, then ``os.replace``d over the
  destination.  A crash mid-save leaves the previous artifact intact,
  never a half-written one.
* **Framing + checksums** — a magic/version header followed by
  length-prefixed, CRC32-guarded frames.  Corruption (bit flips,
  truncation) is *detected* and reported as
  :class:`~repro.errors.CorruptionError` with the failing frame, and a
  truncated tail can be salvaged up to the last intact frame — exactly
  the semantics a write-ahead-style log needs after losing power
  mid-append.

The format is deliberately simple::

    MAGIC(4) VERSION(1)
    repeat: LEN(4, big-endian) CRC32(4, of payload) PAYLOAD(LEN)
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Any, List, Tuple

from ..errors import CorruptionError

__all__ = [
    "atomic_write_bytes", "write_frames", "read_frames", "FORMAT_VERSION",
]

FORMAT_VERSION = 1
_FRAME_HEADER = struct.Struct(">II")  # length, crc32


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_frames(path, magic: bytes, objects: List[Any]) -> None:
    """Pickle each object into a CRC-guarded frame and atomically write
    the whole artifact."""
    if len(magic) != 4:
        raise ValueError("magic must be 4 bytes")
    parts = [magic, bytes([FORMAT_VERSION])]
    for obj in objects:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(_FRAME_HEADER.pack(len(payload),
                                        zlib.crc32(payload) & 0xFFFFFFFF))
        parts.append(payload)
    atomic_write_bytes(path, b"".join(parts))


def read_frames(path, magic: bytes,
                strict: bool = True) -> Tuple[List[Any], bool]:
    """Read back a framed artifact.

    Returns ``(objects, intact)``.  With ``strict=True`` any defect —
    bad magic, unsupported version, truncated frame, CRC mismatch,
    unpicklable payload — raises :class:`CorruptionError`.  With
    ``strict=False`` a *tail* defect (truncation / corruption after at
    least the header) salvages the intact prefix and returns
    ``intact=False``; a bad header still raises, since nothing is
    salvageable.
    """
    path = Path(path)
    blob = path.read_bytes()
    artifact = path.name
    if len(blob) < 5 or blob[:4] != magic:
        raise CorruptionError("bad magic: not a BionicDB durable artifact",
                              artifact=artifact,
                              expected=magic, got=bytes(blob[:4]))
    version = blob[4]
    if version != FORMAT_VERSION:
        raise CorruptionError("unsupported artifact format version",
                              artifact=artifact, version=version,
                              supported=FORMAT_VERSION)
    objects: List[Any] = []
    offset = 5
    index = 0
    while offset < len(blob):
        def defect(message: str, **details) -> Tuple[List[Any], bool]:
            if strict:
                raise CorruptionError(message, artifact=artifact,
                                      frame=index, offset=offset, **details)
            return objects, False

        if offset + _FRAME_HEADER.size > len(blob):
            return defect("truncated frame header")
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(blob):
            return defect("truncated frame payload",
                          expected_bytes=length,
                          available=len(blob) - start)
        payload = blob[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return defect("frame checksum mismatch")
        try:
            objects.append(pickle.loads(payload))
        except Exception as exc:
            return defect(f"frame does not unpickle: {exc}")
        offset = end
        index += 1
    return objects, True
