"""Durable-file plumbing for the host's recovery artifacts (§4.8).

The command log and checkpoint are the *only* state that survives a
crash, so they get the treatment real recovery files get:

* **Atomic replace** — content is written to a temporary file in the
  same directory, flushed and fsynced, then ``os.replace``d over the
  destination.  A crash mid-save leaves the previous artifact intact,
  never a half-written one.
* **Framing + checksums** — a magic/version header followed by
  length-prefixed, CRC32-guarded frames.  Corruption (bit flips,
  truncation) is *detected* and reported as
  :class:`~repro.errors.CorruptionError` with the failing frame, and a
  truncated tail can be salvaged up to the last intact frame — exactly
  the semantics a write-ahead-style log needs after losing power
  mid-append.

The format is deliberately simple::

    MAGIC(4) VERSION(1)
    repeat: LEN(4, big-endian) CRC32(4, of payload) PAYLOAD(LEN)

Both write paths — whole-artifact :func:`write_frames` and the
incremental :class:`FrameAppender` — accept an optional
:class:`~repro.faults.FaultPlan`; when one is armed, a save can be
killed before or after the atomic rename and an append can be torn at
an arbitrary byte or bit-flipped, which is exactly the damage the
salvage side of :func:`read_frames` exists to survive.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Any, List, Optional, Tuple

from ..errors import CorruptionError, FaultError

__all__ = [
    "atomic_write_bytes", "write_frames", "read_frames", "FrameAppender",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1
_FRAME_HEADER = struct.Struct(">II")  # length, crc32


def atomic_write_bytes(path, data: bytes, faults=None) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + replace).

    With a fault plan armed, the save can crash *before* the rename
    (the previous artifact survives; the tmp file is left behind, as a
    real crash would leave it) or *after* it (the new artifact is
    already in place)."""
    path = Path(path)
    if faults is not None:
        faults.check_alive()
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".",
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if faults is not None:
        from ..faults.plan import CRASH_AFTER_RENAME, CRASH_BEFORE_RENAME
        if faults.fires(CRASH_BEFORE_RENAME):
            raise faults.crash(CRASH_BEFORE_RENAME, artifact=path.name)
        os.replace(tmp, path)
        if faults.fires(CRASH_AFTER_RENAME):
            raise faults.crash(CRASH_AFTER_RENAME, artifact=path.name)
        return
    os.replace(tmp, path)


def _pack_frame(obj: Any) -> bytes:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload),
                              zlib.crc32(payload) & 0xFFFFFFFF) + payload


def write_frames(path, magic: bytes, objects: List[Any],
                 faults=None) -> None:
    """Pickle each object into a CRC-guarded frame and atomically write
    the whole artifact."""
    if len(magic) != 4:
        raise ValueError("magic must be 4 bytes")
    parts = [magic, bytes([FORMAT_VERSION])]
    parts.extend(_pack_frame(obj) for obj in objects)
    atomic_write_bytes(path, b"".join(parts), faults=faults)


class FrameAppender:
    """Incremental framed writer: one flushed frame per append.

    Unlike :func:`write_frames` (which rewrites the whole artifact), an
    appender persists records as they happen, so a crash mid-append
    tears at most the frame being written — the salvage mode of
    :func:`read_frames` recovers everything before it.  This is the
    write-side discipline a command log needs.

    The appender owns the file from creation: it refuses to append to
    an existing non-empty file (whose tail it cannot vouch for) unless
    ``overwrite=True`` truncates it first.

    ``fsync`` controls whether every append also fsyncs; the simulated
    fault model only needs the flush (the host process never actually
    dies), so it defaults off.
    """

    def __init__(self, path, magic: bytes, faults=None,
                 overwrite: bool = True, fsync: bool = False):
        if len(magic) != 4:
            raise ValueError("magic must be 4 bytes")
        self.path = Path(path)
        self.magic = magic
        self.faults = faults
        self.fsync = fsync
        if not overwrite and self.path.exists() and self.path.stat().st_size:
            raise FaultError(
                "appender refuses an existing non-empty file: its tail "
                "may be torn; load + rewrite instead",
                artifact=self.path.name)
        self._f = open(self.path, "wb")
        self._f.write(magic + bytes([FORMAT_VERSION]))
        self._f.flush()
        if fsync:
            os.fsync(self._f.fileno())
        self.closed = False

    def append(self, obj: Any) -> None:
        """Serialise one frame and flush it to disk.

        Fault sites: ``durable.torn_append`` cuts the frame at a drawn
        byte offset and crashes; ``durable.append_bit_flip`` flips a
        drawn bit (header or payload — CRC or parse catches it at load)
        and crashes."""
        if self.closed:
            raise FaultError("append on a closed appender",
                             artifact=self.path.name)
        faults = self.faults
        if faults is not None:
            faults.check_alive()
        frame = _pack_frame(obj)
        if faults is not None:
            from ..faults.plan import APPEND_BIT_FLIP, TORN_APPEND
            if faults.fires(TORN_APPEND):
                cut = faults.draw_int(0, len(frame) - 1)
                self._f.write(frame[:cut])
                self._f.flush()
                raise faults.crash(TORN_APPEND, artifact=self.path.name,
                                   cut_at=cut, frame_bytes=len(frame))
            if faults.fires(APPEND_BIT_FLIP):
                bit = faults.draw_int(0, len(frame) * 8 - 1)
                damaged = bytearray(frame)
                damaged[bit // 8] ^= 1 << (bit % 8)
                self._f.write(bytes(damaged))
                self._f.flush()
                raise faults.crash(APPEND_BIT_FLIP, artifact=self.path.name,
                                   flipped_bit=bit)
        self._f.write(frame)
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())

    def close(self) -> None:
        if not self.closed:
            self._f.flush()
            if self.fsync:
                os.fsync(self._f.fileno())
            self._f.close()
            self.closed = True

    def __enter__(self) -> "FrameAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_frames(path, magic: bytes,
                strict: bool = True) -> Tuple[List[Any], bool]:
    """Read back a framed artifact.

    Returns ``(objects, intact)``.  With ``strict=True`` any defect —
    bad magic, unsupported version, truncated frame, CRC mismatch,
    unpicklable payload — raises :class:`CorruptionError`.  With
    ``strict=False`` a *tail* defect (truncation / corruption after at
    least the header) salvages the intact prefix and returns
    ``intact=False``; a bad header still raises, since nothing is
    salvageable.
    """
    path = Path(path)
    blob = path.read_bytes()
    artifact = path.name
    if len(blob) < 5 or blob[:4] != magic:
        raise CorruptionError("bad magic: not a BionicDB durable artifact",
                              artifact=artifact,
                              expected=magic, got=bytes(blob[:4]))
    version = blob[4]
    if version != FORMAT_VERSION:
        raise CorruptionError("unsupported artifact format version",
                              artifact=artifact, version=version,
                              supported=FORMAT_VERSION)
    objects: List[Any] = []
    offset = 5
    index = 0
    while offset < len(blob):
        def defect(message: str, **details) -> Tuple[List[Any], bool]:
            if strict:
                raise CorruptionError(message, artifact=artifact,
                                      frame=index, offset=offset, **details)
            return objects, False

        if offset + _FRAME_HEADER.size > len(blob):
            return defect("truncated frame header")
        length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(blob):
            return defect("truncated frame payload",
                          expected_bytes=length,
                          available=len(blob) - start)
        payload = blob[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return defect("frame checksum mismatch")
        try:
            objects.append(pickle.loads(payload))
        except Exception as exc:
            return defect(f"frame does not unpickle: {exc}")
        offset = end
        index += 1
    return objects, True
