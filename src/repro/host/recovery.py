"""Checkpointing and recovery replay (§4.8).

Recovery: load the last checkpoint image, replay the committed command
logs in commit-timestamp order (uncommitted ones are ignored), then
re-initialise the hardware clocks past the latest commit timestamp and
resume transaction processing.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.system import BionicDB
from ..errors import BionicError, CorruptionError, StuckTransactionError
from ..mem.schema import IndexKind
from ..mem.txnblock import BlockLayout, TxnStatus
from ..sim.engine import SimulationError
from .command_log import CommandLog, LogRecord
from .durable import read_frames, write_frames

__all__ = ["Checkpoint", "take_checkpoint", "RecoveryManager", "RecoveryError"]

#: magic for the framed on-disk checkpoint format
CKPT_MAGIC = b"BDBC"


class RecoveryError(BionicError, RuntimeError):
    pass


@dataclass
class Checkpoint:
    """A consistent snapshot: rows per (table, partition)."""

    #: (table_id, partition) -> list of (key, fields, write_ts)
    rows: Dict[Tuple[int, int], List[tuple]] = field(default_factory=dict)
    last_commit_ts: int = 0

    def save(self, path, faults=None) -> None:
        """Atomic, checksummed save: one frame for the commit timestamp
        plus one frame per (table, partition) — so a corrupt partition
        image names itself instead of poisoning the whole image.

        ``faults`` threads a :class:`~repro.faults.FaultPlan` into the
        atomic-replace path (crash before/after the rename)."""
        frames: List[tuple] = [("meta", self.last_commit_ts)]
        frames.extend(("rows", key, items)
                      for key, items in sorted(self.rows.items()))
        write_frames(path, CKPT_MAGIC, frames, faults=faults)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        try:
            frames, _intact = read_frames(path, CKPT_MAGIC, strict=True)
        except CorruptionError as exc:
            if exc.details.get("expected") == CKPT_MAGIC:
                try:
                    return cls._load_legacy(path)
                except CorruptionError as legacy_exc:
                    raise CorruptionError(
                        "neither a framed checkpoint nor a readable "
                        "legacy pickle",
                        artifact=Path(path).name,
                        framed_error=str(exc),
                        legacy_error=str(legacy_exc)) from exc
            raise
        if not frames or frames[0][0] != "meta":
            raise CorruptionError("checkpoint missing meta frame",
                                  artifact=Path(path).name)
        ckpt = cls(last_commit_ts=frames[0][1])
        for frame in frames[1:]:
            if (not isinstance(frame, tuple) or len(frame) != 3
                    or frame[0] != "rows"):
                raise CorruptionError("checkpoint frame failed validation",
                                      artifact=Path(path).name)
            ckpt.rows[frame[1]] = frame[2]
        return ckpt

    @staticmethod
    def _load_legacy(path) -> "Checkpoint":
        """Read the pre-framing (rows, ts) pickle.

        Only unpickling and I/O failures are caught — and re-raised as
        :class:`CorruptionError` naming the original failure — so a
        genuine bug (e.g. a bad patch to this loader) still surfaces
        instead of being silently swallowed."""
        artifact = Path(path).name
        try:
            with open(Path(path), "rb") as f:
                obj = pickle.load(f)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError,
                ImportError, IndexError) as exc:
            # the pickle module's documented failure modes, plus OSError
            raise CorruptionError("legacy checkpoint pickle failed to load",
                                  artifact=artifact,
                                  cause=f"{type(exc).__name__}: {exc}") from exc
        try:
            rows, last_ts = obj
        except (TypeError, ValueError) as exc:
            raise CorruptionError(
                "legacy checkpoint is not a (rows, last_commit_ts) pair",
                artifact=artifact, got=type(obj).__name__) from exc
        if not isinstance(rows, dict) or not isinstance(last_ts, int):
            raise CorruptionError(
                "legacy checkpoint pair has unexpected types",
                artifact=artifact, rows_type=type(rows).__name__,
                ts_type=type(last_ts).__name__)
        return Checkpoint(rows=rows, last_commit_ts=last_ts)


def take_checkpoint(db: BionicDB) -> Checkpoint:
    """Snapshot every partition's committed rows (host-side, quiescent)."""
    ckpt = Checkpoint(last_commit_ts=db.hw_clock.current)
    for schema in db.schemas:
        for w, worker in enumerate(db.workers):
            if schema.replicated and w > 0:
                continue  # one copy is enough; restore re-replicates
            if schema.index_kind == IndexKind.HASH:
                items = list(worker.hash_pipe.items_direct(schema.table_id))
            elif schema.index_kind == IndexKind.BPTREE:
                items = list(worker.bptree_pipe.checkpoint_rows(schema.table_id))
            else:
                items = list(worker.skiplist_pipe.checkpoint_rows(schema.table_id))
            ckpt.rows[(schema.table_id, w)] = items
    return ckpt


class RecoveryManager:
    """Rebuilds a fresh BionicDB from a checkpoint + command log."""

    def __init__(self, db: BionicDB):
        self.db = db

    def restore_checkpoint(self, ckpt: Checkpoint,
                           partitions: Optional[set] = None) -> int:
        """Bulk-load the checkpoint image; returns rows restored.

        ``partitions`` restricts the restore to those partition ids —
        the failover/migration path, where a follower rebuilds only the
        partitions it is taking over (replicated tables, stored as a
        single partition-0 copy, are always restored)."""
        n = 0
        for (table_id, partition), items in ckpt.rows.items():
            try:
                schema = self.db.schemas.table(table_id)
            except Exception as exc:
                raise RecoveryError(
                    f"checkpoint references table {table_id} which the "
                    f"target database does not define: {exc}",
                    table_id=table_id) from exc
            if (partitions is not None and partition not in partitions
                    and not schema.replicated):
                continue
            for key, fields, _write_ts in items:
                if schema.replicated:
                    self.db.load(table_id, key, fields)
                else:
                    self.db.load(table_id, key, fields, partition=partition)
                n += 1
        return n

    def replay(self, log: CommandLog, after_ts: int = 0,
               max_events_per_txn: Optional[int] = 2_000_000) -> int:
        """Re-execute committed blocks in commit-timestamp order.

        Replay is serial (one block at a time) so the re-execution
        reproduces the original serial commit order exactly; the
        hardware clock is then re-initialised past the latest commit
        timestamp (§4.8).

        ``after_ts`` skips records already captured by the checkpoint
        being recovered onto (pass ``ckpt.last_commit_ts`` when the
        checkpoint was taken mid-run), so pre-checkpoint inserts are
        not replayed into duplicate-key aborts.

        ``max_events_per_txn`` is the recovery watchdog: a
        corrupt-but-committed record whose re-execution never converges
        raises :class:`RecoveryError` instead of hanging recovery
        forever (pass ``None`` to disable — not recommended).
        """
        replayed = 0
        for record in log.committed_in_order():
            if record.commit_ts <= after_ts:
                continue
            try:
                block = self._rebuild_block(record)
                self.db.submit(block, record.home_worker)
            except BionicError as exc:
                raise RecoveryError(
                    f"cannot replay txn {record.txn_id}: {exc}",
                    txn_id=record.txn_id, proc_id=record.proc_id) from exc
            try:
                self.db.run(max_events=max_events_per_txn)
            except SimulationError as exc:
                raise RecoveryError(
                    f"replay of txn {record.txn_id} exhausted its event "
                    f"budget — corrupt record or runaway procedure",
                    txn_id=record.txn_id, proc_id=record.proc_id,
                    max_events=max_events_per_txn) from exc
            except StuckTransactionError as exc:
                raise RecoveryError(
                    f"replay of txn {record.txn_id} stranded the machine",
                    txn_id=record.txn_id, proc_id=record.proc_id) from exc
            if block.header.status is not TxnStatus.COMMITTED:
                raise RecoveryError(
                    f"replay of txn {record.txn_id} did not commit: "
                    f"{block.header.abort_reason}")
            replayed += 1
        self.db.hw_clock.reinitialize(max(log.max_commit_ts,
                                          self.db.hw_clock.current))
        return replayed

    def _rebuild_block(self, record: LogRecord):
        layout = BlockLayout(n_inputs=record.layout_inputs,
                             n_outputs=record.layout_outputs,
                             n_scratch=record.layout_scratch,
                             n_undo=record.layout_undo,
                             n_scan=record.layout_scan)
        return self.db.new_block(record.proc_id, list(record.inputs),
                                 layout=layout, worker=record.home_worker)
