"""Host-CPU duties: durable clients, command logging, recovery."""

from .client import DurableClient
from .command_log import CommandLog, LogRecord
from .durable import FrameAppender
from .maintenance import CompactionStats, compact
from .open_loop import OpenLoopClient, OpenLoopReport
from .recovery import Checkpoint, RecoveryError, RecoveryManager, take_checkpoint

__all__ = [
    "DurableClient", "CommandLog", "LogRecord", "FrameAppender",
    "Checkpoint", "RecoveryError", "RecoveryManager", "take_checkpoint",
    "OpenLoopClient", "OpenLoopReport",
    "CompactionStats", "compact",
]
