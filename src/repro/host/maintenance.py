"""Host-side index maintenance: tombstone garbage collection.

REMOVE leaves committed tombstones in the indexes (§4.7: the commit
protocol keeps the tombstone bit; the paper does not discuss physical
deletion).  Left alone, tombstones lengthen hash-conflict chains and
skiplist levels.  This module implements the natural housekeeping duty
of the host CPU (§4.2 gives it "background housekeeping jobs"): a
quiescent sweep that physically unlinks committed tombstones.

Must only run while the FPGA is idle (the host signals stop/start, as
for checkpointing); it is timing-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.system import BionicDB
from ..mem.records import NULL_ADDR
from ..mem.schema import IndexKind

__all__ = ["CompactionStats", "compact"]


@dataclass
class CompactionStats:
    hash_tombstones_removed: int = 0
    skiplist_tombstones_removed: int = 0
    bptree_tombstones_removed: int = 0

    @property
    def total(self) -> int:
        return (self.hash_tombstones_removed
                + self.skiplist_tombstones_removed
                + self.bptree_tombstones_removed)


def _compact_hash_table(heap, base: int, n_buckets: int) -> int:
    removed = 0
    for b in range(n_buckets):
        bucket_addr = base + b
        # unlink committed tombstones from the chain head first
        while True:
            head = heap.load(bucket_addr)
            if not head:
                break
            record = heap.load(head)
            if record is None:
                break
            if record.tombstone and not record.dirty:
                heap.store(bucket_addr, record.next_addr or NULL_ADDR)
                removed += 1
            else:
                break
        # then from the middle of the chain
        addr = heap.load(bucket_addr)
        while addr:
            record = heap.load(addr)
            if record is None:
                break
            nxt = record.next_addr
            while nxt:
                nrec = heap.load(nxt)
                if nrec is None:
                    break
                if nrec.tombstone and not nrec.dirty:
                    record.next_addr = nrec.next_addr or NULL_ADDR
                    removed += 1
                    nxt = record.next_addr
                else:
                    break
            addr = record.next_addr
    return removed


def _compact_skiplist(heap, head_addr: int, max_height: int) -> int:
    removed = set()
    for level in range(max_height - 1, -1, -1):
        node = heap.load(head_addr)
        node_addr = head_addr
        while True:
            nxt_addr = node.nexts[level] if level < node.height else NULL_ADDR
            if not nxt_addr:
                break
            nxt = heap.load(nxt_addr)
            if nxt.tombstone and not nxt.dirty:
                node.nexts[level] = (nxt.nexts[level]
                                     if level < nxt.height else NULL_ADDR)
                removed.add(nxt_addr)
            else:
                node_addr, node = nxt_addr, nxt
    return len(removed)


def compact(db: BionicDB) -> CompactionStats:
    """Physically unlink committed tombstones in every partition."""
    stats = CompactionStats()
    heap = db.heap
    for schema in db.schemas:
        for worker in db.workers:
            if schema.index_kind == IndexKind.HASH:
                pipe = worker.hash_pipe
                base, n_buckets = pipe._tables[schema.table_id]
                stats.hash_tombstones_removed += _compact_hash_table(
                    heap, base, n_buckets)
            elif schema.index_kind == IndexKind.BPTREE:
                stats.bptree_tombstones_removed += (
                    worker.bptree_pipe.compact_direct(schema.table_id))
            else:
                pipe = worker.skiplist_pipe
                stats.skiplist_tombstones_removed += _compact_skiplist(
                    heap, pipe.head_addr_of(schema.table_id), pipe.max_height)
    return stats
