"""A durable client driver: submit through the command log.

Wraps :class:`BionicDB` submission with the §4.8 protocol: every input
transaction block is appended to the command log before execution and
finalised (with its commit state and timestamp) afterwards, so a crash
between the two leaves a replayable record.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.system import BionicDB, RunReport
from ..mem.txnblock import BlockLayout, TransactionBlock, TxnStatus
from .command_log import CommandLog

__all__ = ["DurableClient"]


class DurableClient:
    def __init__(self, db: BionicDB, log: Optional[CommandLog] = None,
                 path=None, faults=None):
        """Pass ``path`` (and optionally a fault plan) to log
        crash-consistently: every record is flushed to disk the moment
        it is appended or finalised, so an ack implies durability."""
        self.db = db
        if log is not None and path is not None:
            raise ValueError("pass a CommandLog or a path, not both")
        self.log = log if log is not None else CommandLog(path=path,
                                                          faults=faults)

    def execute(self, proc_id: int, inputs: Sequence,
                layout: Optional[BlockLayout] = None,
                worker: int = 0) -> TransactionBlock:
        """Run one transaction durably; returns the finished block."""
        block = self.db.new_block(proc_id, list(inputs), layout=layout,
                                  worker=worker)
        self.log.append_pending(block)
        try:
            self.db.submit(block, worker)
            self.db.run()
        finally:
            # even if the run blew up, record what we know: a block that
            # never reached COMMITTED stays replay-ignored, while its
            # input survives for post-mortem (§4.8 crash semantics)
            self.log.finalize(block)
        return block

    def execute_batch(self, requests: Sequence[tuple]) -> List[TransactionBlock]:
        """Run (proc_id, inputs, layout, worker) tuples concurrently,
        logging each before submission."""
        blocks = []
        for proc_id, inputs, layout, worker in requests:
            block = self.db.new_block(proc_id, list(inputs), layout=layout,
                                      worker=worker)
            self.log.append_pending(block)
            blocks.append((block, worker))
        try:
            for block, worker in blocks:
                self.db.submit(block, worker)
            self.db.run()
        finally:
            for block, _worker in blocks:
                self.log.finalize(block)
        return [b for b, _w in blocks]

    @property
    def committed(self) -> int:
        return sum(1 for r in self.log.records() if r.status == "committed")
