"""Command logging (§4.8).

BionicDB's recovery design follows VoltDB's command-logging approach:
the host CPU persists every *input* transaction block before returning
it to the client; after a failure it reloads the last checkpoint and
re-executes the committed blocks in commit-timestamp order.  Each
executed block already carries its commit state and commit timestamp,
preserving the input arguments — which is exactly what a command-log
record needs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Sequence

from ..mem.txnblock import TransactionBlock, TxnStatus

__all__ = ["LogRecord", "CommandLog"]


@dataclass(frozen=True)
class LogRecord:
    """One durable command-log entry."""

    txn_id: int
    proc_id: int
    inputs: tuple
    home_worker: int
    layout_inputs: int
    layout_outputs: int
    layout_scratch: int
    layout_undo: int
    layout_scan: int
    status: str = "pending"
    commit_ts: int = 0

    @classmethod
    def from_block(cls, block: TransactionBlock) -> "LogRecord":
        layout = block.layout
        inputs = tuple(block.input_cell(i) for i in range(layout.n_inputs))
        return cls(
            txn_id=block.txn_id, proc_id=block.proc_id, inputs=inputs,
            home_worker=getattr(block, "home_worker", 0),
            layout_inputs=layout.n_inputs, layout_outputs=layout.n_outputs,
            layout_scratch=layout.n_scratch, layout_undo=layout.n_undo,
            layout_scan=layout.n_scan,
            status=block.header.status.value,
            commit_ts=block.header.commit_ts,
        )


class CommandLog:
    """An append-only log of transaction blocks.

    Records are appended *before* execution (so the input survives a
    crash) and finalised afterwards with the commit state.  ``save`` /
    ``load`` move the log to and from durable storage.
    """

    def __init__(self) -> None:
        self._records: List[LogRecord] = []
        self._index: dict = {}

    def __len__(self) -> int:
        return len(self._records)

    def append_pending(self, block: TransactionBlock) -> None:
        if block.txn_id in self._index:
            raise ValueError(f"txn {block.txn_id} already logged")
        record = LogRecord.from_block(block)
        self._index[block.txn_id] = len(self._records)
        self._records.append(record)

    def finalize(self, block: TransactionBlock) -> None:
        """Record the commit state after execution."""
        try:
            pos = self._index[block.txn_id]
        except KeyError:
            raise ValueError(f"txn {block.txn_id} was never logged") from None
        old = self._records[pos]
        self._records[pos] = LogRecord(
            txn_id=old.txn_id, proc_id=old.proc_id, inputs=old.inputs,
            home_worker=old.home_worker,
            layout_inputs=old.layout_inputs, layout_outputs=old.layout_outputs,
            layout_scratch=old.layout_scratch, layout_undo=old.layout_undo,
            layout_scan=old.layout_scan,
            status=block.header.status.value,
            commit_ts=block.header.commit_ts,
        )

    def records(self) -> Sequence[LogRecord]:
        return tuple(self._records)

    def committed_in_order(self) -> List[LogRecord]:
        """Committed records sorted by commit timestamp — the replay
        order §4.8 requires."""
        committed = [r for r in self._records
                     if r.status == TxnStatus.COMMITTED.value]
        return sorted(committed, key=lambda r: r.commit_ts)

    @property
    def max_commit_ts(self) -> int:
        return max((r.commit_ts for r in self._records
                    if r.status == TxnStatus.COMMITTED.value), default=0)

    # -- durability ------------------------------------------------------
    def save(self, path) -> None:
        with open(Path(path), "wb") as f:
            pickle.dump(self._records, f)

    @classmethod
    def load(cls, path) -> "CommandLog":
        log = cls()
        with open(Path(path), "rb") as f:
            log._records = pickle.load(f)
        log._index = {r.txn_id: i for i, r in enumerate(log._records)}
        return log
