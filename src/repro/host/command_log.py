"""Command logging (§4.8).

BionicDB's recovery design follows VoltDB's command-logging approach:
the host CPU persists every *input* transaction block before returning
it to the client; after a failure it reloads the last checkpoint and
re-executes the committed blocks in commit-timestamp order.  Each
executed block already carries its commit state and commit timestamp,
preserving the input arguments — which is exactly what a command-log
record needs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Sequence

from ..errors import CorruptionError
from ..mem.txnblock import TransactionBlock, TxnStatus
from .durable import FrameAppender, read_frames, write_frames

__all__ = ["LogRecord", "CommandLog"]

#: magic for the framed on-disk command-log format
LOG_MAGIC = b"BDBL"

_VALID_STATUSES = frozenset(s.value for s in TxnStatus)


@dataclass(frozen=True)
class LogRecord:
    """One durable command-log entry."""

    txn_id: int
    proc_id: int
    inputs: tuple
    home_worker: int
    layout_inputs: int
    layout_outputs: int
    layout_scratch: int
    layout_undo: int
    layout_scan: int
    status: str = "pending"
    commit_ts: int = 0

    @classmethod
    def from_block(cls, block: TransactionBlock) -> "LogRecord":
        layout = block.layout
        inputs = tuple(block.input_cell(i) for i in range(layout.n_inputs))
        return cls(
            txn_id=block.txn_id, proc_id=block.proc_id, inputs=inputs,
            home_worker=getattr(block, "home_worker", 0),
            layout_inputs=layout.n_inputs, layout_outputs=layout.n_outputs,
            layout_scratch=layout.n_scratch, layout_undo=layout.n_undo,
            layout_scan=layout.n_scan,
            status=block.header.status.value,
            commit_ts=block.header.commit_ts,
        )


class CommandLog:
    """An append-only log of transaction blocks.

    Records are appended *before* execution (so the input survives a
    crash) and finalised afterwards with the commit state.  ``save`` /
    ``load`` move the log to and from durable storage.

    Pass ``path`` to make the log *crash-consistent*: every
    ``append_pending`` and ``finalize`` immediately appends one framed,
    CRC-guarded record to the file (finalisation appends a second
    record for the same txn; load keeps the last), so a crash tears at
    most the record being written and ``load(strict=False)`` salvages
    everything before it.  Without a path, durability is explicit via
    ``save`` (the historical whole-file rewrite).
    """

    def __init__(self, path=None, faults=None, fsync: bool = False) -> None:
        self._records: List[LogRecord] = []
        self._index: dict = {}
        #: True when a non-strict load salvaged a damaged tail
        self.truncated: bool = False
        self._appender: Optional[FrameAppender] = None
        if path is not None:
            self._appender = FrameAppender(path, LOG_MAGIC, faults=faults,
                                           fsync=fsync)

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        """Close the incremental persistence file, if any."""
        if self._appender is not None:
            self._appender.close()

    def append_pending(self, block: TransactionBlock) -> None:
        if block.txn_id in self._index:
            raise ValueError(f"txn {block.txn_id} already logged")
        record = LogRecord.from_block(block)
        self._index[block.txn_id] = len(self._records)
        self._records.append(record)
        if self._appender is not None:
            self._appender.append(record)

    def finalize(self, block: TransactionBlock) -> None:
        """Record the commit state after execution."""
        try:
            pos = self._index[block.txn_id]
        except KeyError:
            raise ValueError(f"txn {block.txn_id} was never logged") from None
        old = self._records[pos]
        record = LogRecord(
            txn_id=old.txn_id, proc_id=old.proc_id, inputs=old.inputs,
            home_worker=old.home_worker,
            layout_inputs=old.layout_inputs, layout_outputs=old.layout_outputs,
            layout_scratch=old.layout_scratch, layout_undo=old.layout_undo,
            layout_scan=old.layout_scan,
            status=block.header.status.value,
            commit_ts=block.header.commit_ts,
        )
        self._records[pos] = record
        if self._appender is not None:
            self._appender.append(record)

    def append_record(self, record: LogRecord) -> None:
        """Apply one already-built record — the replication path, where
        frames arrive from the owner instead of from a local block.  A
        record for a txn already present replaces it (pending →
        finalised), mirroring load()'s last-frame-wins rule."""
        pos = self._index.get(record.txn_id)
        if pos is None:
            self._index[record.txn_id] = len(self._records)
            self._records.append(record)
        else:
            self._records[pos] = record
        if self._appender is not None:
            self._appender.append(record)

    @classmethod
    def from_records(cls, records: Sequence[LogRecord]) -> "CommandLog":
        """An in-memory log rebuilt from shipped frames (a follower's
        replica, or a migration log tail)."""
        log = cls()
        for record in records:
            log.append_record(record)
        return log

    def status_of(self, txn_id: int) -> Optional[str]:
        """The logged status of ``txn_id``, or ``None`` if unlogged."""
        pos = self._index.get(txn_id)
        return self._records[pos].status if pos is not None else None

    def records(self) -> Sequence[LogRecord]:
        return tuple(self._records)

    def committed_in_order(self) -> List[LogRecord]:
        """Committed records sorted by commit timestamp — the replay
        order §4.8 requires."""
        committed = [r for r in self._records
                     if r.status == TxnStatus.COMMITTED.value]
        return sorted(committed, key=lambda r: r.commit_ts)

    @property
    def max_commit_ts(self) -> int:
        return max((r.commit_ts for r in self._records
                    if r.status == TxnStatus.COMMITTED.value), default=0)

    # -- durability ------------------------------------------------------
    def save(self, path) -> None:
        """Persist atomically as a framed, per-record-checksummed file.

        A crash during save leaves the previous file intact; a crash
        that truncates the new file is detectable (and salvageable) at
        load time.
        """
        write_frames(path, LOG_MAGIC, list(self._records))

    @classmethod
    def load(cls, path, strict: bool = True) -> "CommandLog":
        """Load a saved log, verifying per-record checksums.

        ``strict=True`` raises :class:`CorruptionError` on any damage.
        ``strict=False`` salvages the intact prefix of a truncated or
        tail-corrupted log (the right recovery posture after losing
        power mid-append) and marks the instance ``truncated``.
        Legacy whole-file-pickle logs (pre-framing) are still readable.

        An incrementally-written log may hold several frames for one
        txn (pending, then finalised); the last one wins.
        """
        try:
            records, intact = read_frames(path, LOG_MAGIC, strict=strict)
        except CorruptionError as exc:
            if exc.details.get("expected") == LOG_MAGIC:
                legacy = cls._load_legacy(path)
                if legacy is not None:
                    records, intact = legacy, True
                else:
                    raise
            else:
                raise
        log = cls()
        log.truncated = not intact
        for i, record in enumerate(records):
            cls._validate_record(record, i, path)
            pos = log._index.get(record.txn_id)
            if pos is None:
                log._index[record.txn_id] = len(log._records)
                log._records.append(record)
            else:
                log._records[pos] = record
        return log

    @staticmethod
    def _load_legacy(path) -> Optional[List["LogRecord"]]:
        """Best-effort read of the pre-framing format (one pickled list)."""
        try:
            with open(Path(path), "rb") as f:
                records = pickle.load(f)
        except Exception:
            return None
        return records if isinstance(records, list) else None

    @staticmethod
    def _validate_record(record, index: int, path) -> None:
        """Structural sanity of one decoded record — a frame can pass
        its CRC and still hold garbage if the file was tampered with."""
        ok = (isinstance(record, LogRecord)
              and isinstance(record.txn_id, int)
              and isinstance(record.proc_id, int)
              and record.status in _VALID_STATUSES
              and record.layout_inputs >= 0 and record.layout_outputs >= 0
              and record.layout_scratch >= 0 and record.layout_undo >= 0
              and record.layout_scan >= 0)
        if not ok:
            raise CorruptionError("command-log record failed validation",
                                  artifact=Path(path).name, record=index)
