"""Open-loop load generation: clients that do not wait.

The paper pre-populates input transaction blocks and measures saturated
throughput ("ideally, remote clients should submit transaction blocks
through network cards", §5.1).  This module models those clients: an
open-loop generator submits blocks at Poisson arrival times regardless
of completions, which is what exposes the latency-vs-load hockey stick
closed-loop benchmarks hide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.system import BionicDB, RunReport
from ..mem.txnblock import TransactionBlock, TxnStatus

__all__ = ["OpenLoopClient", "OpenLoopReport"]


@dataclass
class OpenLoopReport:
    offered_tps: float
    committed: int
    aborted: int
    elapsed_ns: float
    latencies_ns: List[float]

    @property
    def achieved_tps(self) -> float:
        return self.committed / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return (sum(self.latencies_ns) / len(self.latencies_ns)
                if self.latencies_ns else 0.0)

    def percentile_ns(self, p: float) -> float:
        if not self.latencies_ns:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        ordered = sorted(self.latencies_ns)
        rank = max(1, -(-len(ordered) * p // 100))
        return ordered[int(rank) - 1]


class OpenLoopClient:
    """Poisson arrivals into a BionicDB."""

    def __init__(self, db: BionicDB, seed: int = 1):
        self.db = db
        self._rng = random.Random(seed)

    def run(self,
            make_txn: Callable[[int], Tuple[TransactionBlock, int]],
            n_txns: int,
            offered_tps: float) -> OpenLoopReport:
        """Submit ``n_txns`` blocks at ``offered_tps`` mean arrival rate.

        ``make_txn(i)`` returns (block, home_worker).  Blocks are
        created lazily at their arrival instants, exactly as a network
        client would deliver them.
        """
        if offered_tps <= 0:
            raise ValueError("offered rate must be positive")
        db = self.db
        blocks: List[TransactionBlock] = []
        mean_gap_ns = 1e9 / offered_tps

        def arrival_process():
            for i in range(n_txns):
                block, home = make_txn(i)
                blocks.append(block)
                db.submit(block, home)
                yield db.engine.timeout(self._rng.expovariate(1.0) * mean_gap_ns)

        start_committed = db._committed_total()
        start_aborted = db._aborted_total()
        start_ns = db.engine.now
        db.engine.process(arrival_process(), name="open-loop-client")
        db.run()
        latencies = [b.done_at_ns - b.submitted_at_ns for b in blocks
                     if getattr(b, "done_at_ns", None) is not None
                     and b.header.status is TxnStatus.COMMITTED]
        return OpenLoopReport(
            offered_tps=offered_tps,
            committed=db._committed_total() - start_committed,
            aborted=db._aborted_total() - start_aborted,
            elapsed_ns=db.engine.now - start_ns,
            latencies_ns=latencies,
        )
