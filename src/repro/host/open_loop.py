"""Open-loop load generation: clients that do not wait.

The paper pre-populates input transaction blocks and measures saturated
throughput ("ideally, remote clients should submit transaction blocks
through network cards", §5.1).  This module models those clients: an
open-loop generator submits blocks at Poisson arrival times regardless
of completions, which is what exposes the latency-vs-load hockey stick
closed-loop benchmarks hide.

Since the front-end subsystem landed, this client is a thin veneer
over :mod:`repro.frontend`: one open-loop :class:`ClientSession`
through a *pass-through* front-end (infinite link, no admission, no
dispatch window), which preserves the historical behaviour — blocks
reach their home workers at their arrival instants — while sharing
the session machinery.  The public API is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..core.system import BionicDB
from ..mem.txnblock import TransactionBlock
from ..sim.stats import nearest_rank

__all__ = ["OpenLoopClient", "OpenLoopReport"]


@dataclass
class OpenLoopReport:
    offered_tps: float
    committed: int
    aborted: int
    elapsed_ns: float
    latencies_ns: List[float]

    def __post_init__(self):
        self._sorted_latencies = None   # cached by percentile_ns

    @property
    def achieved_tps(self) -> float:
        return self.committed / (self.elapsed_ns * 1e-9) if self.elapsed_ns else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return (sum(self.latencies_ns) / len(self.latencies_ns)
                if self.latencies_ns else 0.0)

    def percentile_ns(self, p: float) -> float:
        if not self.latencies_ns:
            if not 0 < p <= 100:
                raise ValueError("percentile must be in (0, 100]")
            return 0.0
        if (self._sorted_latencies is None
                or len(self._sorted_latencies) != len(self.latencies_ns)):
            self._sorted_latencies = sorted(self.latencies_ns)
        return nearest_rank(self._sorted_latencies, p)


class OpenLoopClient:
    """Poisson arrivals into a BionicDB."""

    def __init__(self, db: BionicDB, seed: int = 1):
        self.db = db
        self._seed = seed
        self._runs = 0

    def run(self,
            make_txn: Callable[[int], Tuple[TransactionBlock, int]],
            n_txns: int,
            offered_tps: float) -> OpenLoopReport:
        """Submit ``n_txns`` blocks at ``offered_tps`` mean arrival rate.

        ``make_txn(i)`` returns (block, home_worker).  Blocks are
        created lazily at their arrival instants, exactly as a network
        client would deliver them.
        """
        from ..frontend import FrontEnd, FrontendConfig, SessionConfig
        if offered_tps <= 0:
            raise ValueError("offered rate must be positive")
        db = self.db
        start_ns = db.engine.now
        # successive run() calls draw fresh but deterministic arrivals
        seed = self._seed + 7919 * self._runs
        self._runs += 1
        frontend = FrontEnd(db, FrontendConfig.passthrough())
        try:
            session = frontend.session(
                make_txn,
                SessionConfig(name="open-loop-client", arrival="open",
                              rate_tps=offered_tps, n_requests=n_txns,
                              seed=seed))
            frontend.run()
        finally:
            frontend.detach()
        stats = session.stats
        return OpenLoopReport(
            offered_tps=offered_tps,
            committed=stats.committed,
            aborted=stats.aborted,
            elapsed_ns=db.engine.now - start_ns,
            latencies_ns=list(stats.latencies_ns),
        )
