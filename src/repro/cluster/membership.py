"""Failure detection and epoch-numbered membership views.

Every node heartbeats every peer over the same :class:`NodeLinks`
lanes the data plane uses, so a link fault starves both planes
consistently.  A node is *suspected* by a peer once the peer's last
heartbeat from it is older than ``heartbeat_timeout_ns``; it is
*declared dead* — and a new epoch-numbered :class:`MembershipView` is
emitted — only when **every** live peer suspects it, so a single cut
link (one peer deaf, the rest still hearing beats) never triggers a
spurious failover, while total silence (node death, or a wedged
heartbeat egress — the classic false positive) does.

The service is engine-free: :meth:`advance_to` replays heartbeat
emission and delivery up to a target virtual time, the same
hand-advanced clock the HA control plane and the cluster drills use.
The service is also the cluster's single **epoch authority**:
:meth:`next_epoch` hands out the monotonic epochs that tag every
ownership decision (failover, migration re-own), which is what makes
stale-epoch fencing sound — an ownership change is visible as a strict
epoch increase, never a reuse.

Declared-dead is terminal: a falsely-declared node that later resumes
heartbeating stays out of the view (its partitions have moved; epoch
fencing rejects anything it acknowledges late).  Rejoin/catch-up is
roadmap work, not silently half-done here.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from ..core.config import HAConfig
from .interconnect import NodeLinks

__all__ = ["MembershipView", "MembershipService"]


@dataclass(frozen=True)
class MembershipView:
    """One epoch-numbered snapshot of who the cluster believes is alive."""

    epoch: int
    alive: FrozenSet[int]
    dead: FrozenSet[int]
    at_ns: float
    #: the node whose death (if any) produced this view
    declared: Optional[int] = None


class MembershipService:
    """Heartbeat bookkeeping, suspicion, and death declaration."""

    def __init__(self, n_nodes: int, links: NodeLinks,
                 ha: Optional[HAConfig] = None, start_ns: float = 0.0):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.links = links
        self.ha = ha or HAConfig()
        self.now_ns = start_ns
        #: declared-alive nodes (a falsely-declared node leaves this set
        #: even though it is still executing — fencing handles the rest)
        self.alive: Set[int] = set(range(n_nodes))
        #: nodes that actually stopped (they emit nothing)
        self.really_dead: Set[int] = set()
        #: observer -> peer -> last heartbeat arrival
        self.last_heard: Dict[int, Dict[int, float]] = {
            d: {s: start_ns for s in range(n_nodes) if s != d}
            for d in range(n_nodes)}
        self._next_beat: Dict[int, float] = {
            n: start_ns + self.ha.heartbeat_interval_ns
            for n in range(n_nodes)}
        self._pending: List[tuple] = []     # (arrive, seq, src, dst)
        self._seq = 0
        self.epoch = 1
        self.views: List[MembershipView] = [MembershipView(
            epoch=1, alive=frozenset(self.alive), dead=frozenset(),
            at_ns=start_ns)]
        self._on_death: List[Callable[[int, int, float], None]] = []

    # -- wiring --------------------------------------------------------------
    def on_death(self, fn: Callable[[int, int, float], None]) -> None:
        """Register ``fn(node, epoch, now_ns)`` to run at declaration."""
        self._on_death.append(fn)

    def next_epoch(self) -> int:
        """The single epoch authority: every ownership change takes its
        epoch from here, so epochs order *all* ownership decisions."""
        self.epoch += 1
        return self.epoch

    def kill(self, node: int, now_ns: Optional[float] = None) -> None:
        """The node actually stops (power loss): it emits no further
        heartbeats; declaration follows from the resulting silence."""
        self.really_dead.add(node)
        if now_ns is not None:
            self.now_ns = max(self.now_ns, now_ns)

    # -- queries -------------------------------------------------------------
    def suspects(self, observer: int, peer: int,
                 now_ns: Optional[float] = None) -> bool:
        t = self.now_ns if now_ns is None else now_ns
        heard = self.last_heard[observer].get(peer)
        if heard is None:
            return False
        return (t - heard) > self.ha.heartbeat_timeout_ns

    def view(self) -> MembershipView:
        return self.views[-1]

    # -- the clock -----------------------------------------------------------
    def advance_to(self, t: float) -> List[MembershipView]:
        """Replay heartbeat emission/delivery up to virtual time ``t``;
        returns the views (death declarations) emitted along the way."""
        emitted: List[MembershipView] = []
        while True:
            senders = sorted((self.alive - self.really_dead))
            next_emit = min((self._next_beat[n] for n in senders),
                            default=math.inf)
            next_arr = self._pending[0][0] if self._pending else math.inf
            ts = min(next_emit, next_arr)
            if ts > t or ts == math.inf:
                break
            if next_arr <= next_emit:
                arrive, _, src, dst = heapq.heappop(self._pending)
                if dst in self.alive and src in self.last_heard[dst]:
                    self.last_heard[dst][src] = max(
                        self.last_heard[dst][src], arrive)
            else:
                src = min(n for n in senders if self._next_beat[n] == next_emit)
                self._next_beat[src] += self.ha.heartbeat_interval_ns
                for dst in sorted(self.alive):
                    if dst == src:
                        continue
                    arr = self.links.delivery(src, dst, ts, kind="hb",
                                              heartbeat=True)
                    if arr is not None:
                        heapq.heappush(self._pending,
                                       (arr, self._seq, src, dst))
                        self._seq += 1
            emitted.extend(self._declare(ts))
        self.now_ns = max(self.now_ns, t)
        emitted.extend(self._declare(self.now_ns))
        return emitted

    def _declare(self, t: float) -> List[MembershipView]:
        """Declare dead every alive node all its live peers suspect."""
        out: List[MembershipView] = []
        for node in sorted(self.alive):
            observers = [d for d in self.alive if d != node]
            if not observers:
                continue    # a lone survivor never declares itself dead
            if all(self.suspects(d, node, t) for d in observers):
                self.alive.discard(node)
                epoch = self.next_epoch()
                view = MembershipView(
                    epoch=epoch, alive=frozenset(self.alive),
                    dead=frozenset(range(self.n_nodes)) - frozenset(self.alive),
                    at_ns=t, declared=node)
                self.views.append(view)
                out.append(view)
                for fn in self._on_death:
                    fn(node, epoch, t)
        return out
