"""Hierarchical interconnect for multi-chip BionicDB (§4.6 future work).

"BionicDB is currently a single-chip, single-node system ... it is
vital to scale BionicDB across multiple FPGA nodes in a shared-nothing
cluster like H-store ... the message-passing channels should be
diversified with additional connectivities for inter-node
communication."

This interconnect presents the familiar crossbar interface over global
worker ids: messages between workers on the same chip take the on-chip
hop (3 cycles); messages crossing chips take an inter-node link
(microseconds, serialised per directed node pair).

Because cluster nodes share no DRAM, a request that crosses nodes must
be *self-contained*: the key travels inline (no remote KeyFetch into
the initiator's transaction block), and operations whose effects or
operands live in the initiator's memory — writes (the §4.7 commit
protocol patches tuples from the initiator) and scans (the scan set is
materialised in the initiator's block) — are rejected with
:class:`ClusterError`.  A distributed commit protocol is beyond the
paper's design; see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..comm.channels import CommLink, RequestPacket, ResponsePacket
from ..errors import BionicError
from ..isa.instructions import Opcode
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo

__all__ = ["ClusterError", "HierarchicalInterconnect"]

_CROSS_NODE_OK = frozenset({Opcode.SEARCH})


class ClusterError(BionicError, RuntimeError):
    """An operation that cannot cross shared-nothing node boundaries."""


class HierarchicalInterconnect:
    def __init__(self, engine: Engine, clock: ClockDomain,
                 node_of: Sequence[int],
                 intra_hop_cycles: float = 3.0,
                 inter_latency_ns: float = 1500.0,
                 inter_issue_ns: float = 50.0,
                 stats: Optional[StatsRegistry] = None,
                 faults=None,
                 stall_max_ns: float = 50_000.0):
        self.engine = engine
        self.clock = clock
        self.node_of = list(node_of)
        self.n_workers = len(self.node_of)
        self.intra_hop_ns = clock.ns(intra_hop_cycles)
        self.inter_latency_ns = inter_latency_ns
        self.inter_issue_ns = inter_issue_ns
        self.issue_interval_ns = clock.ns(1.0)
        self.links = [CommLink(engine, w) for w in range(self.n_workers)]
        self._lane_free: Dict[tuple, float] = {}
        self.stats = stats or StatsRegistry()
        #: optional repro.faults.FaultPlan; inter-node messages can be
        #: lost (interconnect.drop) or stalled (interconnect.stall, by
        #: up to ``stall_max_ns`` drawn from the plan's RNG)
        self.faults = faults
        self.stall_max_ns = stall_max_ns
        self._sent = self.stats.counter("comm.messages")
        self._inter = self.stats.counter("comm.internode_messages")
        self._fault_lost = self.stats.counter("comm.fault_lost")
        self._fault_stalled = self.stats.counter("comm.fault_stalled")

    def link(self, worker_id: int) -> CommLink:
        return self.links[worker_id]

    def crosses_nodes(self, src: int, dst: int) -> bool:
        return self.node_of[src] != self.node_of[dst]

    # -- sending ------------------------------------------------------------
    def send_request(self, packet: RequestPacket) -> None:
        self._check(packet.dst_worker)
        if self.crosses_nodes(packet.src_worker, packet.dst_worker):
            self._make_self_contained(packet)
        self._send(packet.src_worker, packet.dst_worker, "req",
                   self.links[packet.dst_worker].requests, packet)

    def send_response(self, packet: ResponsePacket) -> None:
        self._check(packet.dst_worker)
        self._send(packet.src_worker, packet.dst_worker, "rsp",
                   self.links[packet.dst_worker].responses, packet)

    def _make_self_contained(self, packet: RequestPacket) -> None:
        req = packet.request
        if req.op not in _CROSS_NODE_OK:
            raise ClusterError(
                f"{req.op.value} cannot cross node boundaries: the commit "
                "protocol and scan buffers live in the initiator's memory")
        if req.key_value is None:
            # no shared DRAM: the key must travel inline
            req.key_value = req.route_key
            req.key_addr = None

    def _check(self, dst: int) -> None:
        if not 0 <= dst < self.n_workers:
            raise ValueError(f"destination worker {dst} out of range")

    def _send(self, src: int, dst: int, kind: str, queue: Fifo, packet) -> None:
        now = self.engine.now
        self._sent.add()
        if self.crosses_nodes(src, dst):
            lane = (kind, self.node_of[src], self.node_of[dst])
            depart = max(now, self._lane_free.get(lane, 0.0))
            self._lane_free[lane] = depart + self.inter_issue_ns
            arrive = depart + self.inter_latency_ns
            self._inter.add()
            if self.faults is not None:
                from ..faults.plan import LINK_DROP, LINK_STALL
                if self.faults.fires(LINK_DROP, now):
                    # lost on the wire: never delivered.  The waiting
                    # initiator strands; the PR-1 stuck-transaction
                    # check surfaces the loss instead of a silent hang.
                    self._fault_lost.add()
                    return
                if self.faults.fires(LINK_STALL, now):
                    self._fault_stalled.add()
                    arrive += self.faults.draw() * self.stall_max_ns
        else:
            lane = (kind, src, dst)
            depart = max(now, self._lane_free.get(lane, 0.0))
            self._lane_free[lane] = depart + self.issue_interval_ns
            arrive = depart + self.intra_hop_ns
        self.engine.call_at(arrive, lambda: queue.put(packet))

    # -- latency figures ---------------------------------------------------------
    @property
    def primitive_latency_ns(self) -> float:
        return self.intra_hop_ns

    @property
    def roundtrip_latency_ns(self) -> float:
        return 2 * self.intra_hop_ns

    @property
    def internode_roundtrip_ns(self) -> float:
        return 2 * self.inter_latency_ns
