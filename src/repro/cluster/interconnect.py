"""Hierarchical interconnect for multi-chip BionicDB (§4.6 future work).

"BionicDB is currently a single-chip, single-node system ... it is
vital to scale BionicDB across multiple FPGA nodes in a shared-nothing
cluster like H-store ... the message-passing channels should be
diversified with additional connectivities for inter-node
communication."

This interconnect presents the familiar crossbar interface over global
worker ids: messages between workers on the same chip take the on-chip
hop (3 cycles); messages crossing chips take an inter-node link
(microseconds, serialised per directed node pair).

The inter-node portion is factored into :class:`NodeLinks`, a pure
time-arithmetic model of the node-to-node lanes (serialisation,
latency, drops, stalls, partitions) that needs no event engine.  The
interconnect uses it for the data plane; the HA control plane
(:mod:`repro.cluster.membership`) routes heartbeats and command-log
shipping over the *same* lanes, so a link fault starves both planes
consistently — the topology-sensitivity lesson from *OLTP on Hardware
Islands*.

Because cluster nodes share no DRAM, a request that crosses nodes must
be *self-contained*: the key travels inline (no remote KeyFetch into
the initiator's transaction block), and operations whose effects or
operands live in the initiator's memory — writes (the §4.7 commit
protocol patches tuples from the initiator) and scans (the scan set is
materialised in the initiator's block) — are rejected with
:class:`ClusterError`.  A distributed commit protocol is beyond the
paper's design; see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence

from ..comm.channels import CommLink, RequestPacket, ResponsePacket
from ..errors import BionicError
from ..isa.instructions import Opcode
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.stats import StatsRegistry
from ..sim.sync import Fifo

__all__ = ["ClusterError", "HierarchicalInterconnect", "NodeLinks"]

_CROSS_NODE_OK = frozenset({Opcode.SEARCH})


class ClusterError(BionicError, RuntimeError):
    """An operation that cannot cross shared-nothing node boundaries."""


class NodeLinks:
    """The inter-node lanes: serialisation, latency, and injected faults.

    Engine-free: :meth:`delivery` is pure time arithmetic — given a send
    instant it returns the arrival instant, or ``None`` when the message
    is lost (an armed ``interconnect.drop``, a fired or standing
    ``interconnect.partition``, a muted heartbeat source).  Callers that
    live on the discrete-event engine (the data-plane interconnect)
    schedule the delivery themselves; callers that advance virtual time
    by hand (the membership layer, replication shipping, drills) use the
    returned instants directly.

    Fault sites consulted per send, in order: ``interconnect.drop``,
    ``interconnect.stall``, then ``interconnect.partition`` (which cuts
    the undirected node pair for ``plan.draw() * partition_max_ns`` and
    loses the triggering message).  Heartbeat sends additionally consult
    ``cluster.heartbeat_loss`` first.
    """

    def __init__(self, n_nodes: int,
                 inter_latency_ns: float = 1500.0,
                 inter_issue_ns: float = 50.0,
                 faults=None,
                 stats: Optional[StatsRegistry] = None,
                 stall_max_ns: float = 50_000.0,
                 partition_max_ns: float = 20_000_000.0):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.inter_latency_ns = inter_latency_ns
        self.inter_issue_ns = inter_issue_ns
        self.faults = faults
        self.stall_max_ns = stall_max_ns
        self.partition_max_ns = partition_max_ns
        self.stats = stats or StatsRegistry()
        self._lane_free: Dict[tuple, float] = {}
        #: undirected node pair -> healed-at instant
        self._cut_until: Dict[FrozenSet[int], float] = {}
        #: node -> heartbeat-egress muted until (detector-food drills)
        self._hb_muted_until: Dict[int, float] = {}
        self._fault_lost = self.stats.counter("comm.fault_lost")
        self._fault_stalled = self.stats.counter("comm.fault_stalled")
        self._fault_partitioned = self.stats.counter("comm.fault_partitioned")
        self._hb_lost = self.stats.counter("comm.heartbeats_lost")

    # -- standing link state -------------------------------------------------
    def isolate(self, a: int, b: int, until_ns: float) -> None:
        """Cut the (a, b) pair — both directions — until ``until_ns``."""
        pair = frozenset((a, b))
        self._cut_until[pair] = max(self._cut_until.get(pair, 0.0), until_ns)

    def heal(self, a: int, b: int) -> None:
        self._cut_until.pop(frozenset((a, b)), None)

    def is_cut(self, a: int, b: int, now_ns: float) -> bool:
        return self._cut_until.get(frozenset((a, b)), 0.0) > now_ns

    def mute_heartbeats(self, node: int, until_ns: float) -> None:
        """Silence ``node``'s outgoing heartbeats (its NIC egress control
        queue wedges) while data traffic still flows — the classic
        failure-detector false positive."""
        self._hb_muted_until[node] = max(
            self._hb_muted_until.get(node, 0.0), until_ns)

    # -- delivery ------------------------------------------------------------
    def delivery(self, src_node: int, dst_node: int, now_ns: float,
                 kind: str = "req", heartbeat: bool = False
                 ) -> Optional[float]:
        """Arrival instant of one message sent at ``now_ns`` — or
        ``None`` if it is lost on the wire."""
        lane = (kind, src_node, dst_node)
        depart = max(now_ns, self._lane_free.get(lane, 0.0))
        self._lane_free[lane] = depart + self.inter_issue_ns
        arrive = depart + self.inter_latency_ns
        if heartbeat and self._hb_muted_until.get(src_node, 0.0) > now_ns:
            self._hb_lost.add()
            return None
        if self.is_cut(src_node, dst_node, now_ns):
            self._fault_partitioned.add()
            if heartbeat:
                self._hb_lost.add()
            return None
        if self.faults is not None:
            from ..faults.plan import (
                HEARTBEAT_LOSS, LINK_DROP, LINK_PARTITION, LINK_STALL,
            )
            if heartbeat and self.faults.fires(HEARTBEAT_LOSS, now_ns):
                self._hb_lost.add()
                return None
            if self.faults.fires(LINK_DROP, now_ns):
                # lost on the wire: never delivered.  A waiting
                # initiator strands; the PR-1 stuck-transaction check
                # surfaces the loss instead of a silent hang.
                self._fault_lost.add()
                return None
            if self.faults.fires(LINK_STALL, now_ns):
                self._fault_stalled.add()
                arrive += self.faults.draw() * self.stall_max_ns
            if self.faults.fires(LINK_PARTITION, now_ns):
                self.isolate(src_node, dst_node,
                             now_ns + self.faults.draw() * self.partition_max_ns)
                self._fault_partitioned.add()
                return None
        return arrive

    def bulk_transfer_ns(self, src_node: int, dst_node: int, n_bytes: int,
                         now_ns: float, ns_per_byte: float
                         ) -> Optional[float]:
        """Completion instant of a bulk state transfer (migration
        snapshot + log tail), or ``None`` while the pair is cut."""
        if self.is_cut(src_node, dst_node, now_ns):
            self._fault_partitioned.add()
            return None
        return now_ns + self.inter_latency_ns + n_bytes * ns_per_byte


class HierarchicalInterconnect:
    def __init__(self, engine: Engine, clock: ClockDomain,
                 node_of: Sequence[int],
                 intra_hop_cycles: float = 3.0,
                 inter_latency_ns: float = 1500.0,
                 inter_issue_ns: float = 50.0,
                 stats: Optional[StatsRegistry] = None,
                 faults=None,
                 stall_max_ns: float = 50_000.0):
        self.engine = engine
        self.clock = clock
        self.node_of = list(node_of)
        self.n_workers = len(self.node_of)
        self.intra_hop_ns = clock.ns(intra_hop_cycles)
        self.inter_latency_ns = inter_latency_ns
        self.inter_issue_ns = inter_issue_ns
        self.issue_interval_ns = clock.ns(1.0)
        self.links = [CommLink(engine, w) for w in range(self.n_workers)]
        self._lane_free: Dict[tuple, float] = {}
        self.stats = stats or StatsRegistry()
        #: optional repro.faults.FaultPlan; inter-node messages can be
        #: lost (interconnect.drop), stalled (interconnect.stall, by up
        #: to ``stall_max_ns`` drawn from the plan's RNG) or cut off by
        #: a drawn-duration link partition (interconnect.partition)
        self.faults = faults
        self.stall_max_ns = stall_max_ns
        n_nodes = (max(self.node_of) + 1) if self.node_of else 1
        #: the shared inter-node lane model; the HA control plane rides
        #: the same instance so faults starve both planes consistently
        self.node_links = NodeLinks(
            n_nodes, inter_latency_ns=inter_latency_ns,
            inter_issue_ns=inter_issue_ns, faults=faults, stats=self.stats,
            stall_max_ns=stall_max_ns)
        self._sent = self.stats.counter("comm.messages")
        self._inter = self.stats.counter("comm.internode_messages")

    def link(self, worker_id: int) -> CommLink:
        return self.links[worker_id]

    def crosses_nodes(self, src: int, dst: int) -> bool:
        return self.node_of[src] != self.node_of[dst]

    # -- sending ------------------------------------------------------------
    def send_request(self, packet: RequestPacket) -> None:
        self._check(packet.dst_worker)
        if self.crosses_nodes(packet.src_worker, packet.dst_worker):
            self._make_self_contained(packet)
        self._send(packet.src_worker, packet.dst_worker, "req",
                   self.links[packet.dst_worker].requests, packet)

    def send_response(self, packet: ResponsePacket) -> None:
        self._check(packet.dst_worker)
        self._send(packet.src_worker, packet.dst_worker, "rsp",
                   self.links[packet.dst_worker].responses, packet)

    def _make_self_contained(self, packet: RequestPacket) -> None:
        req = packet.request
        if req.op not in _CROSS_NODE_OK:
            raise ClusterError(
                f"{req.op.value} cannot cross node boundaries: the commit "
                "protocol and scan buffers live in the initiator's memory")
        if req.key_value is None:
            # no shared DRAM: the key must travel inline
            req.key_value = req.route_key
            req.key_addr = None

    def _check(self, dst: int) -> None:
        if not 0 <= dst < self.n_workers:
            raise ValueError(f"destination worker {dst} out of range")

    def _send(self, src: int, dst: int, kind: str, queue: Fifo, packet) -> None:
        now = self.engine.now
        self._sent.add()
        if self.crosses_nodes(src, dst):
            self._inter.add()
            arrive = self.node_links.delivery(
                self.node_of[src], self.node_of[dst], now, kind=kind)
            if arrive is None:
                return
        else:
            lane = (kind, src, dst)
            depart = max(now, self._lane_free.get(lane, 0.0))
            self._lane_free[lane] = depart + self.issue_interval_ns
            arrive = depart + self.intra_hop_ns
        self.engine.call_at(arrive, lambda: queue.put(packet))

    # -- latency figures ---------------------------------------------------------
    @property
    def primitive_latency_ns(self) -> float:
        return self.intra_hop_ns

    @property
    def roundtrip_latency_ns(self) -> float:
        return 2 * self.intra_hop_ns

    @property
    def internode_roundtrip_ns(self) -> float:
        return 2 * self.inter_latency_ns
