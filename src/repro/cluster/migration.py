"""Live partition migration: drain → transfer → re-own.

Moving a partition's ownership while traffic flows is the hard half of
ROADMAP item 1 (elastic repartitioning).  The state machine:

``DRAINING``
    The router stops admitting new transactions for the partition —
    they queue instead (bounded client-visible unavailability starts
    ticking).  In the serial control-plane model the owner has no
    in-flight work, so the drain barrier costs one interconnect
    latency.

``TRANSFER``
    The destination already holds the partition's bootstrap snapshot
    (shipped at cluster formation); what moves now is the committed
    log *tail* past the destination's applied watermark, costed as a
    bulk transfer over the (possibly cut) inter-node links.

``RE_OWN``
    The destination replays the tail through the stock
    :class:`~repro.host.recovery.RecoveryManager`, the ownership map
    flips under a fresh epoch from the membership authority, and the
    queued transactions are released to the new owner.

``ABORTED``
    Either endpoint died mid-flight, or the links were cut.  Ownership
    never moved (the epoch only bumps at RE_OWN), so the abort path is
    trivially safe: queued work is released back to whichever node the
    ownership map still names — the failover machinery handles a dead
    source exactly as if no migration had been attempted.

The whole DRAINING→RE_OWN window is checked against
``HAConfig.migration_budget_ns``; blowing the budget is recorded as a
:class:`~repro.errors.MigrationError` on the record (drills fail on
it), not silently absorbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import MigrationError

__all__ = ["MigrationState", "MigrationRecord",
           "EST_RECORD_BYTES", "EST_SNAPSHOT_HEADER_BYTES"]

#: costing estimate for one shipped command-log record
EST_RECORD_BYTES = 96
#: costing estimate for the transfer preamble (manifest + watermark)
EST_SNAPSHOT_HEADER_BYTES = 64


class MigrationState(str, enum.Enum):
    DRAINING = "draining"
    TRANSFER = "transfer"
    RE_OWN = "re_own"
    DONE = "done"
    ABORTED = "aborted"


@dataclass
class MigrationRecord:
    """The audit trail of one drain→transfer→re-own attempt."""

    partition: int
    src: int
    dst: int
    started_ns: float
    state: MigrationState = MigrationState.DRAINING
    drained_ns: Optional[float] = None
    #: transfer completes (and the queue releases) at this instant
    release_ns: Optional[float] = None
    tail_records: int = 0
    transfer_bytes: int = 0
    epoch_before: int = 0
    epoch_after: Optional[int] = None
    replayed: int = 0
    queued_released: int = 0
    #: DRAINING→RE_OWN wall time, filled at completion
    unavailability_ns: Optional[float] = None
    failure: Optional[str] = None

    def check_budget(self, budget_ns: float) -> None:
        """Raise (and record) if the unavailability window blew the
        configured budget."""
        if (self.unavailability_ns is not None
                and self.unavailability_ns > budget_ns):
            self.failure = (f"unavailability {self.unavailability_ns:.0f}ns "
                            f"exceeded budget {budget_ns:.0f}ns")
            raise MigrationError(
                "migration blew its unavailability budget",
                partition=self.partition, src=self.src, dst=self.dst,
                unavailability_ns=self.unavailability_ns,
                budget_ns=budget_ns)

    def abort(self, reason: str) -> None:
        self.state = MigrationState.ABORTED
        self.failure = reason

    def summary(self) -> str:
        tail = (f" unavail={self.unavailability_ns:.0f}ns"
                if self.unavailability_ns is not None else "")
        fail = f" FAIL: {self.failure}" if self.failure else ""
        return (f"migrate p{self.partition} n{self.src}->n{self.dst} "
                f"[{self.state.value}] tail={self.tail_records} "
                f"bytes={self.transfer_bytes}{tail}{fail}")
