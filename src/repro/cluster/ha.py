"""Cluster high availability: replicated ownership that survives nodes.

The single-node story is already crash-safe (``repro.faults`` drills);
this module makes *the cluster* safe: partition ownership is
epoch-fenced, every owner ships its command-log frames to a follower
with bounded lag, a dead node's partitions re-open on their followers
through the stock :class:`~repro.host.recovery.RecoveryManager` replay
path, and ownership can also move *deliberately* via the
drain→transfer→re-own machine in :mod:`repro.cluster.migration`.

Model shape: each node is a full-width :class:`BionicDB` (worker *p* on
every node models partition *p*'s slot; only the owner's copy
advances), and the control plane is serial over a hand-advanced virtual
clock shared with :class:`MembershipService` — the same drill-style
host loop ``repro.faults.drill`` uses, so failover drills compose with
the existing crash drills instead of inventing a second harness.

The safety contract, enforced with typed errors and an audit trail:

* **Fail fast, typed, retryable** — a submit against a dead or lagging
  owner raises :class:`PartitionUnavailableError`; an executed-but-not-
  replicated transaction raises :class:`ReplicationStalledError` (and
  is *not* acknowledged); both are :class:`~repro.errors.RetryableError`
  so the front-end retry loop can drive them.
* **Acknowledge only replicated work** — a transaction is acked only
  once its *finalize* frame has been delivered to the follower, so an
  acked commit survives the owner's death by construction.
* **Epoch fencing** — every ownership change takes a fresh epoch from
  the membership authority; a submit claiming an older epoch is
  rejected (:class:`StaleEpochError`) before execution, and every
  execution is recorded in ``audit`` with the epoch that authorized it
  so drills (and ``repro.analysis``) can prove no stale-epoch
  execution ever happened.
* **Retries never double-execute** — :meth:`HACluster.reconcile`
  consults the authoritative log before a client re-submits, the
  contract :class:`ReplicationStalledError` documents.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import HAConfig
from ..core.system import BionicDB
from ..errors import (
    MigrationError, PartitionUnavailableError, ReplicationStalledError,
    StaleEpochError,
)
from ..host.command_log import CommandLog, LogRecord
from ..host.recovery import RecoveryManager, take_checkpoint
from ..mem.txnblock import TxnStatus
from ..sim.stats import StatsRegistry
from .interconnect import NodeLinks
from .membership import MembershipService
from .migration import (
    EST_RECORD_BYTES, EST_SNAPSHOT_HEADER_BYTES, MigrationRecord,
    MigrationState,
)

__all__ = ["HAResult", "ReplicationStream", "PartitionState", "HACluster"]

_TERMINAL = (TxnStatus.COMMITTED.value, TxnStatus.ABORTED.value)


@dataclass
class HAResult:
    """What the router tells the client about one submission."""

    status: str                     # "acked" | "queued"
    partition: int
    epoch: int
    txn_id: Optional[int] = None
    outcome: Optional[str] = None
    ack_ns: Optional[float] = None
    tag: Optional[Any] = None


class ReplicationStream:
    """Owner→follower command-log shipping with bounded-lag accounting.

    Frames (:class:`LogRecord`) are shipped in order over the shared
    :class:`NodeLinks` lanes; a frame lost to a link fault blocks the
    stream (FIFO — delivering later frames first would let a follower
    ack a suffix whose prefix is missing) until :meth:`pump` re-ships
    it.  ``backlog()`` is the bounded-lag gauge the admission path
    checks.  With no live follower (``dst is None`` — last node
    standing) the stream degrades to single-copy mode: frames apply
    immediately and durability rests on the owner alone.
    """

    def __init__(self, partition: int, src: int, dst: Optional[int],
                 links: NodeLinks, membership: MembershipService):
        self.partition = partition
        self.src = src
        self.dst = dst
        self.links = links
        self.membership = membership
        self._queue: List[LogRecord] = []
        #: frames delivered to the follower, in ship order
        self.delivered: List[LogRecord] = []
        self._final_delivered: Set[int] = set()
        self.last_delivery_ns = 0.0
        self.shipped = 0

    def seed(self, records: Sequence[LogRecord], now_ns: float) -> None:
        """Mark ``records`` as already replicated — the bulk sync that
        establishes a fresh follower (costed as part of the failover /
        re-own transfer, not per-frame)."""
        self.delivered = list(records)
        self._final_delivered = {r.txn_id for r in self.delivered
                                 if r.status in _TERMINAL}
        self.last_delivery_ns = now_ns

    def ship(self, record: LogRecord, now_ns: float) -> Optional[float]:
        """Queue one frame and pump; returns the delivery instant of the
        last queued frame, or ``None`` while anything is stuck."""
        self._queue.append(record)
        self.shipped += 1
        return self.pump(now_ns)

    def pump(self, now_ns: float) -> Optional[float]:
        while self._queue:
            if self.dst is None:
                self._apply(self._queue.pop(0))
                self.last_delivery_ns = now_ns
                continue
            if (self.dst in self.membership.really_dead
                    or self.dst not in self.membership.alive):
                return None
            arrive = self.links.delivery(self.src, self.dst, now_ns,
                                         kind="repl")
            if arrive is None:
                return None
            self._apply(self._queue.pop(0))
            self.last_delivery_ns = arrive
        return self.last_delivery_ns

    def _apply(self, record: LogRecord) -> None:
        self.delivered.append(record)
        if record.status in _TERMINAL:
            self._final_delivered.add(record.txn_id)

    def backlog(self) -> int:
        return len(self._queue)

    def has_final(self, txn_id: int) -> bool:
        """Has the txn's finalised frame reached the follower?"""
        return self.dst is None or txn_id in self._final_delivered


@dataclass
class PartitionState:
    """The ownership ledger entry for one global partition."""

    pid: int
    owner: int
    follower: Optional[int]
    epoch: int
    status: str = "open"            # open | draining | transfer
    log: CommandLog = field(default_factory=CommandLog)
    stream: Optional[ReplicationStream] = None
    #: (spec, layout, tag) held at the router while migrating
    queue: List[tuple] = field(default_factory=list)
    migration: Optional[MigrationRecord] = None


class HACluster:
    """N full-width BionicDB nodes under one epoch-fenced control plane.

    ``build_node`` constructs one node's :class:`BionicDB` (with
    ``n_workers == n_partitions``, the global partition count);
    ``install_node`` installs schema, procedures, and the bootstrap
    data snapshot on it — every node starts from the same snapshot, so
    followers only ever need log deltas, never full state.
    """

    def __init__(self, n_nodes: int, n_partitions: int,
                 build_node: Callable[[], BionicDB],
                 install_node: Callable[[BionicDB], None],
                 ha: Optional[HAConfig] = None, faults=None,
                 max_events_per_txn: int = 2_000_000,
                 start_ns: float = 0.0,
                 step_ns: Optional[float] = None):
        if n_nodes < 2:
            raise ValueError("high availability needs at least two nodes")
        self.n_nodes = n_nodes
        self.n_partitions = n_partitions
        self.ha = ha or HAConfig()
        self.faults = faults
        self.max_events_per_txn = max_events_per_txn
        self.stats = StatsRegistry()
        self.links = NodeLinks(n_nodes, faults=faults, stats=self.stats)
        self.membership = MembershipService(n_nodes, self.links, self.ha,
                                            start_ns=start_ns)
        self.membership.on_death(self._on_death)
        self.now_ns = start_ns
        #: control-plane time per submission step; heartbeats flow
        #: between transactions at this cadence
        self.step_ns = step_ns if step_ns is not None \
            else self.ha.heartbeat_interval_ns
        self.nodes: List[BionicDB] = []
        for i in range(n_nodes):
            db = build_node()
            install_node(db)
            # disjoint txn-id ranges per node: a partition's log mixes
            # records minted by successive owners, and CommandLog keys
            # frames by txn_id
            db._txn_counter = (i + 1) * 1_000_000_000
            self.nodes.append(db)
        self.parts: Dict[int, PartitionState] = {}
        for p in range(n_partitions):
            owner = p % n_nodes
            st = PartitionState(pid=p, owner=owner, follower=None,
                                epoch=self.membership.epoch)
            st.follower = self._pick_follower(owner)
            st.stream = ReplicationStream(p, owner, st.follower, self.links,
                                          self.membership)
            self.parts[p] = st
        #: (node, partition) -> commit-ts watermark the node's local
        #: copy of the partition reflects (0 = bootstrap snapshot)
        self._applied_ts: Dict[Tuple[int, int], int] = {}
        #: ("exec"|"reject_stale"|"failover"|"re_own"|"lost",
        #:  tag, partition, epoch, claimed_epoch, t)
        self.audit: List[tuple] = []
        #: tag -> latest execution outcome (terminal status string)
        self.results: Dict[Any, str] = {}
        #: tag -> engine-ns the owner spent executing (perf accounting)
        self.txn_engine_ns: Dict[Any, float] = {}
        #: tag -> HAResult for queued work released after a migration
        self.released: Dict[Any, HAResult] = {}
        #: (spec, layout, tag) the cluster could not place — the client
        #: must reconcile/retry these
        self.deferred: List[tuple] = []
        self.failovers: List[tuple] = []   # (partition, old, new, epoch, t)
        self.migrations: List[MigrationRecord] = []
        self._last_attempt: Dict[Any, Tuple[int, int]] = {}

    # -- topology ------------------------------------------------------------
    @property
    def routable(self) -> Set[int]:
        """Nodes both declared alive and actually running."""
        return self.membership.alive - self.membership.really_dead

    def _pick_follower(self, owner: int) -> Optional[int]:
        live = self.routable
        for k in range(1, self.n_nodes):
            cand = (owner + k) % self.n_nodes
            if cand != owner and cand in live:
                return cand
        return None

    def current_epoch(self, partition: int) -> int:
        """What a client refresh returns: the partition's live epoch."""
        return self.parts[partition].epoch

    def owner_of(self, partition: int) -> int:
        return self.parts[partition].owner

    # -- the clock -----------------------------------------------------------
    def advance(self, dt: Optional[float] = None) -> float:
        """Advance virtual time: heartbeats flow, deaths get declared
        (failing partitions over), and due migrations complete."""
        self.now_ns += dt if dt is not None else self.step_ns
        self.membership.advance_to(self.now_ns)
        self._pump_migrations()
        return self.now_ns

    def kill_node(self, node: int, now_ns: Optional[float] = None) -> None:
        """The node stops. Detection (and failover) follows from the
        heartbeat silence as time advances."""
        t = now_ns if now_ns is not None else self.now_ns
        if self.faults is not None:
            from ..faults.plan import NODE_DEATH
            if self.faults.armed(NODE_DEATH):
                self.faults.fires(NODE_DEATH, t)
        self.membership.kill(node, t)

    # -- submission ----------------------------------------------------------
    def submit_spec(self, spec, layout, client_epoch: Optional[int] = None,
                    tag: Any = None) -> HAResult:
        """Route one transaction: epoch fence, availability check,
        execute on the owner, ack after follower delivery."""
        self.advance()
        now = self.now_ns
        p = spec.home
        st = self.parts[p]
        claimed = client_epoch if client_epoch is not None else st.epoch
        injected = False
        if self.faults is not None:
            from ..faults.plan import STALE_EPOCH_SUBMIT
            if self.faults.fires(STALE_EPOCH_SUBMIT, now):
                claimed = max(0, st.epoch - 1)
                injected = True
        if st.status in ("draining", "transfer"):
            st.queue.append((spec, layout, tag))
            return HAResult(status="queued", partition=p, epoch=st.epoch,
                            tag=tag)
        if claimed != st.epoch:
            self.audit.append(("reject_stale", tag, p, st.epoch, claimed, now))
            raise StaleEpochError(
                "submit fenced: ownership epoch has advanced",
                partition=p, current_epoch=st.epoch, client_epoch=claimed,
                injected=injected)
        if st.owner not in self.routable:
            raise PartitionUnavailableError(
                "partition owner unreachable", partition=p, node=st.owner,
                reason="owner dead or failover pending")
        return self._execute_on_owner(st, spec, layout, tag, now)

    def _execute_on_owner(self, st: PartitionState, spec, layout, tag,
                          now: float,
                          claimed: Optional[int] = None) -> HAResult:
        stream = st.stream
        stream.pump(now)
        if stream.backlog() > self.ha.replication_max_lag:
            raise PartitionUnavailableError(
                "replication lag bound exceeded — refusing before execute",
                partition=st.pid, node=st.owner, reason="bounded lag",
                backlog=stream.backlog(),
                max_lag=self.ha.replication_max_lag)
        db = self.nodes[st.owner]
        block = db.new_block(spec.proc_id, list(spec.inputs), layout=layout,
                             worker=st.pid)
        self._last_attempt[tag] = (st.pid, block.txn_id)
        st.log.append_pending(block)
        stream.ship(LogRecord.from_block(block), now)
        e0 = db.engine.now
        db.submit(block, st.pid)
        db.run(max_events=self.max_events_per_txn)
        self.txn_engine_ns[tag] = db.engine.now - e0
        st.log.finalize(block)
        outcome = block.header.status.value
        self.results[tag] = outcome
        self.audit.append(("exec", tag, st.pid, st.epoch,
                           claimed if claimed is not None else st.epoch, now))
        ack_ns = stream.ship(LogRecord.from_block(block), now)
        if ack_ns is None or stream.backlog() > 0:
            raise ReplicationStalledError(
                "executed but the finalize frame did not reach the follower",
                partition=st.pid, txn_id=block.txn_id, status=outcome,
                backlog=stream.backlog())
        return HAResult(status="acked", partition=st.pid, epoch=st.epoch,
                        txn_id=block.txn_id, outcome=outcome,
                        ack_ns=max(ack_ns, now), tag=tag)

    def reconcile(self, tag: Any) -> Optional[Tuple[str, str]]:
        """Consult the authoritative log before a client retries ``tag``.

        Returns ``("acked", status)`` once the txn's finalize frame is
        safely replicated (a late ack — do not re-execute),
        ``("executed", status)`` when the live owner logged it but
        replication is still stuck (keep waiting), or ``None`` when the
        authoritative log has no trace (the execution died with its
        node — re-executing is safe and required)."""
        info = self._last_attempt.get(tag)
        if info is None:
            return None
        p, txn_id = info
        st = self.parts[p]
        if st.stream is not None:
            st.stream.pump(self.now_ns)
        status = st.log.status_of(txn_id)
        if status in _TERMINAL:
            if st.stream is not None and st.stream.has_final(txn_id):
                return ("acked", status)
            if st.owner in self.routable:
                return ("executed", status)
        return None

    def durable_status(self, partition: int, txn_id: int) -> Optional[str]:
        """The authoritative (current-owner) log's word on a txn."""
        return self.parts[partition].log.status_of(txn_id)

    def attempt_of(self, tag: Any) -> Optional[Tuple[int, int]]:
        """The (partition, txn_id) of the latest execution attempt for
        ``tag`` — what a client quotes when reconciling."""
        return self._last_attempt.get(tag)

    # -- failover ------------------------------------------------------------
    def _on_death(self, node: int, epoch: int, t: float) -> None:
        """Membership declared ``node`` dead: fail its partitions over
        to their followers and re-home any followership it held."""
        for p in sorted(self.parts):
            st = self.parts[p]
            if st.owner != node:
                continue
            if st.status != "open":
                if (st.migration is not None and st.migration.state in
                        (MigrationState.DRAINING, MigrationState.TRANSFER)):
                    st.migration.abort("owner declared dead mid-migration")
                st.status = "open"
                self.deferred.extend(st.queue)
                st.queue = []
            new_owner = st.follower
            if new_owner is None or new_owner not in self.routable:
                new_owner = self._pick_follower(node)
            if new_owner is None:
                self.audit.append(("lost", None, p, st.epoch, None, t))
                continue            # no survivor can take the partition
            delivered = st.stream.delivered if st.stream is not None else []
            new_log = CommandLog.from_records(delivered)
            watermark = self._applied_ts.get((new_owner, p), 0)
            replayed = RecoveryManager(self.nodes[new_owner]).replay(
                new_log, after_ts=watermark,
                max_events_per_txn=self.max_events_per_txn)
            self._applied_ts[(new_owner, p)] = max(watermark,
                                                   new_log.max_commit_ts)
            old_owner = st.owner
            st.owner = new_owner
            st.log = new_log
            st.epoch = self.membership.next_epoch()
            st.follower = self._pick_follower(new_owner)
            st.stream = self._seeded_stream(st)
            st.status = "open"
            self.failovers.append((p, old_owner, new_owner, st.epoch, t))
            self.audit.append(("failover", replayed, p, st.epoch, None, t))
        for p in sorted(self.parts):
            st = self.parts[p]
            if st.owner == node or st.follower != node:
                continue
            st.follower = self._pick_follower(st.owner)
            st.stream = self._seeded_stream(st)

    def _seeded_stream(self, st: PartitionState) -> ReplicationStream:
        """A fresh stream to the (new) follower, bulk-synced with the
        authoritative log so the lag gauge restarts at zero."""
        stream = ReplicationStream(st.pid, st.owner, st.follower, self.links,
                                   self.membership)
        stream.seed(st.log.records(), self.now_ns)
        return stream

    # -- live migration ------------------------------------------------------
    def begin_migration(self, partition: int, dst: int) -> MigrationRecord:
        """Start drain→transfer→re-own; completes inside :meth:`advance`
        once the transfer window has elapsed."""
        now = self.now_ns
        st = self.parts[partition]
        if st.status != "open":
            raise MigrationError("partition is already migrating",
                                 partition=partition, status=st.status)
        if dst == st.owner:
            raise MigrationError("destination already owns the partition",
                                 partition=partition, node=dst)
        if dst not in self.routable:
            raise MigrationError("destination node is not alive",
                                 partition=partition, dst=dst)
        if st.owner not in self.routable:
            raise MigrationError("source node is not alive",
                                 partition=partition, src=st.owner)
        m = MigrationRecord(partition=partition, src=st.owner, dst=dst,
                            started_ns=now, epoch_before=st.epoch)
        m.drained_ns = now + self.links.inter_latency_ns   # router barrier
        watermark = self._applied_ts.get((dst, partition), 0)
        tail = [r for r in st.log.committed_in_order()
                if r.commit_ts > watermark]
        m.tail_records = len(tail)
        m.transfer_bytes = (EST_SNAPSHOT_HEADER_BYTES
                            + EST_RECORD_BYTES * len(tail))
        done = self.links.bulk_transfer_ns(
            st.owner, dst, m.transfer_bytes, m.drained_ns,
            self.ha.transfer_ns_per_byte)
        self.migrations.append(m)
        if done is None:
            m.abort("inter-node links cut at transfer start")
            raise MigrationError("cannot start transfer: links cut",
                                 partition=partition, src=st.owner, dst=dst)
        m.release_ns = done
        st.status = "draining"
        st.migration = m
        return m

    def _pump_migrations(self) -> None:
        for p in sorted(self.parts):
            st = self.parts[p]
            m = st.migration
            if m is None or st.status not in ("draining", "transfer"):
                continue
            if m.src in self.membership.really_dead:
                # ownership never moved; the stock failover path will
                # re-home the partition once the death is declared
                m.abort("source died mid-transfer")
                st.status = "open"
                self.deferred.extend(st.queue)
                st.queue = []
                continue
            if m.dst in self.membership.really_dead:
                m.abort("destination died mid-transfer")
                st.status = "open"
                m.queued_released = self._release_queue(st, self.now_ns)
                continue
            if st.status == "draining" and self.now_ns >= m.drained_ns:
                st.status = "transfer"
                m.state = MigrationState.TRANSFER
            if self.now_ns >= m.release_ns:
                self._complete_migration(st)

    def _complete_migration(self, st: PartitionState) -> None:
        m = st.migration
        p = st.pid
        m.state = MigrationState.RE_OWN
        watermark = self._applied_ts.get((m.dst, p), 0)
        tail_log = CommandLog.from_records(
            [r for r in st.log.committed_in_order()
             if r.commit_ts > watermark])
        m.replayed = RecoveryManager(self.nodes[m.dst]).replay(
            tail_log, after_ts=watermark,
            max_events_per_txn=self.max_events_per_txn)
        self._applied_ts[(m.dst, p)] = max(watermark, st.log.max_commit_ts)
        st.owner = m.dst
        m.epoch_after = st.epoch = self.membership.next_epoch()
        st.follower = self._pick_follower(m.dst)
        st.stream = self._seeded_stream(st)
        st.status = "open"
        m.unavailability_ns = m.release_ns - m.started_ns
        m.state = MigrationState.DONE
        self.audit.append(("re_own", None, p, st.epoch, None, m.release_ns))
        m.queued_released = self._release_queue(st,
                                                max(self.now_ns, m.release_ns))
        m.check_budget(self.ha.migration_budget_ns)

    def _release_queue(self, st: PartitionState, t: float) -> int:
        """Execute router-queued work on the current owner; anything
        that still cannot be placed is handed back via ``deferred``."""
        released = 0
        queue, st.queue = st.queue, []
        for idx, (spec, layout, tag) in enumerate(queue):
            try:
                res = self._execute_on_owner(st, spec, layout, tag, t)
                self.released[tag] = res
                released += 1
            except (PartitionUnavailableError, ReplicationStalledError):
                # defer the rest too: executing later queued work ahead
                # of an unplaceable predecessor would reorder the
                # partition's serial history
                self.deferred.extend(queue[idx:])
                break
        return released

    # -- state inspection ----------------------------------------------------
    def partition_hashes(self) -> Dict[str, str]:
        """Per-partition content hashes read from each partition's
        *current owner* — the cluster-level analogue of
        :func:`repro.faults.drill.partition_hashes`."""
        by_owner: Dict[int, Set[int]] = {}
        for p, st in self.parts.items():
            by_owner.setdefault(st.owner, set()).add(p)
        out: Dict[str, str] = {}
        for owner, pset in by_owner.items():
            ckpt = take_checkpoint(self.nodes[owner])
            for (table, part), items in sorted(ckpt.rows.items()):
                if part not in pset:
                    continue
                digest = hashlib.sha256()
                for key, fields, _write_ts in sorted(
                        items, key=lambda r: repr(r[0])):
                    digest.update(repr((key, list(fields))).encode())
                out[f"t{table}.p{part}"] = digest.hexdigest()
        return out

    def ownership_map(self) -> Dict[int, Tuple[int, int]]:
        """partition -> (owner node, epoch); what a router caches and
        what :func:`repro.analysis.check_epoch_ownership` verifies."""
        return {p: (st.owner, st.epoch) for p, st in self.parts.items()}
