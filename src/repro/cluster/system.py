"""BionicCluster: multiple BionicDB chips in a shared-nothing cluster.

The §4.6/§7 scale-out direction: each node is a full BionicDB chip
(its own DRAM, workers, on-chip channels); partitions are spread over
``n_nodes * workers_per_node`` global partition ids.  Same-node
cross-partition traffic takes the on-chip channels; cross-node traffic
takes microsecond-class inter-node links (AWS-F1-style).

Cross-node transactions may *read* remote partitions (SEARCH); remote
writes would need a distributed commit protocol the paper does not
design, so they raise :class:`ClusterError` (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..core.config import BionicConfig
from ..core.system import RunReport
from ..errors import CrossNodeTransactionError, FrontendError, SubmissionError
from ..dora.worker import PartitionWorker
from ..mem.schema import Catalog, IndexKind, TableSchema
from ..mem.txnblock import BlockLayout, TransactionBlock, TxnStatus
from ..sim.clock import ClockDomain
from ..sim.engine import Engine
from ..sim.memory import DramModel, Heap
from ..sim.stats import StatsRegistry
from ..softcore.catalogue import Catalogue
from ..txn.timestamps import HardwareClock
from .interconnect import ClusterError, HierarchicalInterconnect

__all__ = ["BionicCluster"]


class BionicCluster:
    """N BionicDB chips over inter-node message-passing links."""

    def __init__(self, n_nodes: int = 2,
                 config: Optional[BionicConfig] = None,
                 inter_latency_ns: float = 1500.0,
                 faults=None):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.config = config or BionicConfig()
        cfg = self.config
        self.n_nodes = n_nodes
        self.workers_per_node = cfg.n_workers
        self.total_workers = n_nodes * cfg.n_workers

        self.engine = Engine()
        self.clock = ClockDomain(self.engine, cfg.fpga_mhz, name="fpga")
        self.stats = StatsRegistry()
        self.hw_clock = HardwareClock()
        self.schemas = Catalog()
        self.catalogue = Catalogue(self.schemas,
                                   n_registers=cfg.softcore.n_registers)

        node_of = [w // cfg.n_workers for w in range(self.total_workers)]
        self.interconnect = HierarchicalInterconnect(
            self.engine, self.clock, node_of,
            intra_hop_cycles=cfg.comm_hop_cycles,
            inter_latency_ns=inter_latency_ns, stats=self.stats,
            faults=faults)

        # one DRAM per chip — shared nothing
        self.drams: List[DramModel] = [
            DramModel(self.engine, self.clock, Heap(),
                      latency_cycles=cfg.dram_latency_cycles,
                      channels=cfg.dram_channels, stats=self.stats)
            for _ in range(n_nodes)
        ]
        self._done_count = 0
        self.workers: List[PartitionWorker] = []
        for w in range(self.total_workers):
            node = node_of[w]
            self.workers.append(PartitionWorker(
                self.engine, self.clock, self.drams[node], w,
                self.total_workers, self.catalogue, self.hw_clock,
                self.interconnect,
                softcore_config=cfg.softcore,
                hash_kwargs=cfg.hash_kwargs(),
                skiplist_kwargs=cfg.skiplist_kwargs(),
                bptree_kwargs=cfg.bptree_kwargs(),
                stats=self.stats,
                on_txn_done=self._on_txn_done,
            ))
        self._txn_counter = 0
        self._done_callbacks: List = []
        self.frontend = None

    def node_of(self, worker: int) -> int:
        return worker // self.workers_per_node

    def footprint_index(self):
        """Lazily built static footprint summaries over the registered
        procedures (:class:`repro.analysis.footprint.FootprintIndex`) —
        what the front-end router consults to classify a submit as
        single-node *before* it can bounce off
        :class:`CrossNodeTransactionError`.  Summaries are cached per
        proc_id; re-registering procedures invalidates the cache."""
        if getattr(self, "_footprints", None) is None:
            from ..analysis.footprint import FootprintIndex
            self._footprints = FootprintIndex(
                self.catalogue, self.schemas, self.total_workers,
                node_of=self.node_of)
        return self._footprints

    def ownership_map(self):
        """partition -> (owner node, epoch); static here (no failover —
        that's :class:`repro.cluster.ha.HACluster`), but the same shape
        the front-end router consults before re-homing a cross-node
        submit."""
        return {w: (self.node_of(w), 0) for w in range(self.total_workers)}

    # -- schema / procedures / loading -------------------------------------
    def define_table(self, schema: TableSchema) -> TableSchema:
        self.schemas.add(schema)
        for worker in self.workers:
            worker.add_table(schema)
        return schema

    def register_procedure(self, proc_id: int, program,
                           verify: bool = True) -> None:
        self.catalogue.register(proc_id, program, verify=verify)
        self._footprints = None

    def load(self, table_id: int, key: Any, fields: Sequence[Any],
             partition: Optional[int] = None) -> None:
        schema = self.schemas.table(table_id)
        if schema.replicated:
            targets = range(self.total_workers)
        elif partition is not None:
            targets = [partition]
        else:
            targets = [schema.route(key, self.total_workers)]
        for w in targets:
            worker = self.workers[w]
            if schema.index_kind == IndexKind.HASH:
                worker.hash_pipe.bulk_load(key, list(fields), table_id=table_id)
            elif schema.index_kind == IndexKind.BPTREE:
                worker.bptree_pipe.bulk_load(key, list(fields),
                                             table_id=table_id)
            else:
                worker.skiplist_pipe.bulk_load(key, list(fields),
                                               table_id=table_id)

    # -- transactions ----------------------------------------------------------
    def new_block(self, proc_id: int, inputs: Sequence[Any],
                  layout: Optional[BlockLayout] = None,
                  worker: int = 0) -> TransactionBlock:
        """The block lives in its home worker's node DRAM."""
        self._txn_counter += 1
        dram = self.drams[self.node_of(worker)]
        layout = layout or self.config.block_layout
        if len(inputs) > layout.n_inputs:
            layout = BlockLayout(n_inputs=len(inputs),
                                 n_outputs=layout.n_outputs,
                                 n_scratch=layout.n_scratch,
                                 n_undo=layout.n_undo, n_scan=layout.n_scan)
        block = TransactionBlock(dram, txn_id=self._txn_counter,
                                 proc_id=proc_id, layout=layout)
        block.set_inputs(list(inputs))
        block.home_worker = worker
        return block

    def submit(self, block: TransactionBlock,
               worker: Optional[int] = None) -> None:
        w = worker if worker is not None else block.home_worker
        if not 0 <= w < self.total_workers:
            raise SubmissionError("submit worker out of range",
                                  worker=w, total_workers=self.total_workers)
        if self.node_of(w) != self.node_of(block.home_worker):
            # shared nothing: the block lives in its home node's DRAM; a
            # worker on another node would read a different heap
            # entirely.  Typed so a router can re-plan (re-home, split,
            # or queue for the owning node) instead of string-matching.
            raise CrossNodeTransactionError(
                "block is homed on another node's DRAM; create it with "
                "new_block(..., worker=<target>) so the data is local",
                worker=w, home_worker=block.home_worker,
                worker_node=self.node_of(w),
                home_nodes={self.node_of(block.home_worker)},
                partitions={w, block.home_worker})
        self.catalogue.lookup(block.proc_id)  # raises if unregistered
        block.submitted_at_ns = self.engine.now
        self.workers[w].softcore.submit(block)

    def _on_txn_done(self, block) -> None:
        self._done_count += 1
        block.done_at_ns = self.engine.now
        for fn in self._done_callbacks:
            fn(block)

    # -- front-end attach point (repro.frontend) -----------------------------
    def add_done_callback(self, fn) -> None:
        self._done_callbacks.append(fn)

    def remove_done_callback(self, fn) -> None:
        if fn in self._done_callbacks:
            self._done_callbacks.remove(fn)

    def attach_frontend(self, frontend) -> None:
        """Wire a :class:`repro.frontend.FrontEnd` over the whole
        cluster: requests are dispatched to global worker ids."""
        if self.frontend is not None:
            raise FrontendError("a front-end is already attached",
                                attached=type(self.frontend).__name__)
        self.frontend = frontend
        self.add_done_callback(frontend._note_done)

    def detach_frontend(self, frontend) -> None:
        if self.frontend is not frontend:
            raise FrontendError("front-end is not the attached one")
        self.frontend = None
        self.remove_done_callback(frontend._note_done)

    def run(self, until: Optional[float] = None) -> float:
        now = self.engine.run(until=until)
        for worker in self.workers:
            proc = worker.softcore._proc
            if proc.triggered:
                _ = proc.value
        return now

    def run_all(self, blocks: Sequence[TransactionBlock],
                workers: Optional[Sequence[int]] = None) -> RunReport:
        start_ns = self.engine.now
        committed0 = self._committed_total()
        aborted0 = self._aborted_total()
        for i, block in enumerate(blocks):
            self.submit(block, workers[i] if workers is not None else None)
        self.run()
        return RunReport(
            submitted=len(blocks),
            committed=self._committed_total() - committed0,
            aborted=self._aborted_total() - aborted0,
            elapsed_ns=self.engine.now - start_ns,
        )

    def _committed_total(self) -> int:
        return sum(self.stats.counter(f"worker{w}.committed").value
                   for w in range(self.total_workers))

    def _aborted_total(self) -> int:
        return sum(self.stats.counter(f"worker{w}.aborted").value
                   for w in range(self.total_workers))

    # -- verification -------------------------------------------------------------
    def lookup(self, table_id: int, key: Any,
               partition: Optional[int] = None):
        schema = self.schemas.table(table_id)
        w = partition if partition is not None else (
            0 if schema.replicated else schema.route(key, self.total_workers))
        worker = self.workers[w]
        if schema.index_kind == IndexKind.HASH:
            return worker.hash_pipe.lookup_direct(key, table_id=table_id)
        if schema.index_kind == IndexKind.BPTREE:
            return worker.bptree_pipe.lookup_direct(key, table_id=table_id)
        return worker.skiplist_pipe.lookup_direct(key, table_id=table_id)
