"""Multi-node BionicDB: shared-nothing scale-out (§4.6 future work).

``BionicCluster`` is the single-engine data plane (inter-node reads
over the hierarchical interconnect); the HA control plane —
membership, epoch-fenced ownership, failover, live migration — lives
in :mod:`repro.cluster.ha` / :mod:`repro.cluster.membership` /
:mod:`repro.cluster.migration`.
"""

from .interconnect import ClusterError, HierarchicalInterconnect, NodeLinks
from .membership import MembershipService, MembershipView
from .migration import MigrationRecord, MigrationState
from .system import BionicCluster

__all__ = [
    "ClusterError", "HierarchicalInterconnect", "NodeLinks",
    "MembershipService", "MembershipView",
    "MigrationRecord", "MigrationState",
    "BionicCluster",
    "HACluster", "HAResult", "ReplicationStream", "PartitionState",
]

_HA_NAMES = ("HACluster", "HAResult", "ReplicationStream", "PartitionState")


def __getattr__(name):
    # lazy: repro.cluster.ha pulls in the host recovery stack; plain
    # data-plane users should not pay for it
    if name in _HA_NAMES:
        from . import ha
        return getattr(ha, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
