"""Multi-node BionicDB: shared-nothing scale-out (§4.6 future work)."""

from .interconnect import ClusterError, HierarchicalInterconnect
from .system import BionicCluster

__all__ = ["ClusterError", "HierarchicalInterconnect", "BionicCluster"]
