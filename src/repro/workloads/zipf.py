"""Zipfian key generator (YCSB's scrambled-zipfian access pattern).

Implements the Gray et al. rejection-free zipfian generator used by the
original YCSB client, plus the "scrambled" variant that hashes ranks so
popular keys are spread across the key space.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..errors import WorkloadError

__all__ = ["ZipfianGenerator", "ScrambledZipfianGenerator", "UniformGenerator"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    """Uniform keys in [0, n)."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise WorkloadError("n must be >= 1", n=n)
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian ranks in [0, n) with parameter ``theta`` (default 0.99)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n < 1:
            raise WorkloadError("n must be >= 1", n=n)
        if not 0 < theta < 1:
            raise WorkloadError("theta must be in (0, 1)", theta=theta)
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the key space via FNV hashing."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n
