"""TPC-C (NewOrder + Payment mix) for BionicDB and the baseline."""

from . import schema
from .procedures import (
    MAX_OL_CNT, MIN_OL_CNT, PROC_DELIVERY, PROC_NEWORDER_BASE,
    PROC_ORDERSTATUS, PROC_PAYMENT, PROC_STOCKLEVEL,
    delivery_layout, delivery_procedure, neworder_layout,
    neworder_procedure, orderstatus_layout, orderstatus_procedure,
    payment_layout, payment_procedure, stocklevel_layout,
    stocklevel_procedure,
)
from .schema import TpccConfig, tpcc_schemas
from .workload import TpccWorkload, nurand

__all__ = [
    "schema", "MAX_OL_CNT", "MIN_OL_CNT", "PROC_DELIVERY",
    "PROC_NEWORDER_BASE", "PROC_ORDERSTATUS", "PROC_PAYMENT",
    "PROC_STOCKLEVEL", "delivery_layout", "delivery_procedure",
    "neworder_layout", "neworder_procedure", "orderstatus_layout",
    "orderstatus_procedure", "payment_layout", "payment_procedure",
    "stocklevel_layout", "stocklevel_procedure", "TpccConfig",
    "tpcc_schemas", "TpccWorkload", "nurand",
]
