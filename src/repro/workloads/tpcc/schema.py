"""TPC-C schema for the NewOrder/Payment mix (§5.3).

The database is partitioned by warehouse; the Item table is read-only
and replicated across partitions.  Composite keys are encoded as
integers so stored procedures can *compute* keys with ADD/MUL (the
order id assigned by a NewOrder flows into its ORDER/ORDER-LINE insert
keys — the data dependency the paper blames for TPC-C's serial
execution).

Key encodings (w = warehouse id 1.., d = district 1..10):

==============  =====================================  =========
table           key                                    w divisor
==============  =====================================  =========
WAREHOUSE       w                                      1
DISTRICT        w*100 + d                              100
CUSTOMER        (w*100 + d)*100_000 + c                10**7
ITEM            i                                      replicated
STOCK           w*1_000_000 + i                        10**6
ORDERS          (w*100 + d)*10_000_000 + o             10**9
NEW_ORDER       same as ORDERS                         10**9
ORDER_LINE      orders_key*100 + ol_number             10**11
HISTORY         w*10**13 + unique id                   10**13
==============  =====================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...errors import WorkloadError
from ...mem.schema import IndexKind, TableSchema

__all__ = [
    "TpccConfig", "tpcc_schemas",
    "WAREHOUSE", "DISTRICT", "CUSTOMER", "ITEM", "STOCK",
    "ORDERS", "NEW_ORDER", "ORDER_LINE", "HISTORY",
    "warehouse_key", "district_key", "customer_key", "stock_key",
    "orders_base", "orders_key", "order_line_key", "history_key",
    "W_FIELD_YTD", "W_FIELD_TAX", "D_FIELD_YTD", "D_FIELD_NEXT_O_ID",
    "D_FIELD_NEXT_DELIV", "C_FIELD_BALANCE", "C_FIELD_YTD",
    "C_FIELD_PAYMENT_CNT", "C_FIELD_LAST_O",
    "O_FIELD_C_ID", "O_FIELD_OL_CNT", "O_FIELD_CARRIER",
    "OL_FIELD_I_ID", "OL_FIELD_QTY", "OL_FIELD_DELIVERY_D",
    "I_FIELD_PRICE", "S_FIELD_QUANTITY", "S_FIELD_YTD", "S_FIELD_ORDER_CNT",
]

WAREHOUSE = 1
DISTRICT = 2
CUSTOMER = 3
ITEM = 4
STOCK = 5
ORDERS = 6
NEW_ORDER = 7
ORDER_LINE = 8
HISTORY = 9

# field indexes
W_FIELD_TAX = 1
W_FIELD_YTD = 2
D_FIELD_YTD = 1
D_FIELD_NEXT_O_ID = 2
D_FIELD_NEXT_DELIV = 3     # smallest undelivered order id (Delivery)
C_FIELD_BALANCE = 1
C_FIELD_YTD = 2
C_FIELD_PAYMENT_CNT = 3
C_FIELD_LAST_O = 4         # customer's most recent order key (OrderStatus)
O_FIELD_C_ID = 0
O_FIELD_OL_CNT = 1
O_FIELD_CARRIER = 2        # overwritten from entry date by Delivery
OL_FIELD_I_ID = 0
OL_FIELD_QTY = 1
OL_FIELD_DELIVERY_D = 2
I_FIELD_PRICE = 1
S_FIELD_QUANTITY = 0
S_FIELD_YTD = 1
S_FIELD_ORDER_CNT = 2


def warehouse_key(w: int) -> int:
    return w


def district_key(w: int, d: int) -> int:
    return w * 100 + d


def customer_key(w: int, d: int, c: int) -> int:
    return district_key(w, d) * 100_000 + c


def stock_key(w: int, i: int) -> int:
    return w * 1_000_000 + i


def orders_base(w: int, d: int) -> int:
    return district_key(w, d) * 10_000_000


def orders_key(w: int, d: int, o: int) -> int:
    return orders_base(w, d) + o


def order_line_key(okey: int, ol_number: int) -> int:
    return okey * 100 + ol_number


def history_key(w: int, unique_id: int) -> int:
    return w * 10**13 + unique_id


def _by_warehouse(divisor: int):
    def fn(key, n_partitions):
        w = key // divisor
        return (w - 1) % n_partitions
    return fn


@dataclass
class TpccConfig:
    """Scale knobs.  TPC-C full scale is districts=10, customers=3000,
    items=100_000; the defaults are a reduced but structurally
    identical configuration so simulations load in seconds.  One
    warehouse per partition, as in the paper."""

    n_partitions: int = 4
    districts_per_warehouse: int = 10
    customers_per_district: int = 300
    items: int = 10_000
    remote_payment_fraction: float = 0.15
    remote_neworder_fraction: float = 0.01
    seed: int = 7

    def __post_init__(self):
        for name in ("n_partitions", "districts_per_warehouse",
                     "customers_per_district", "items"):
            if getattr(self, name) < 1:
                raise WorkloadError(f"{name} must be >= 1",
                                    **{name: getattr(self, name)})
        for name in ("remote_payment_fraction", "remote_neworder_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1]",
                                    **{name: getattr(self, name)})

    @property
    def n_warehouses(self) -> int:
        return self.n_partitions


def tpcc_schemas(cfg: TpccConfig) -> List[TableSchema]:
    def buckets(expected_rows: int) -> int:
        return 1 << max(6, (expected_rows * 2 - 1).bit_length())

    per_part_customers = cfg.districts_per_warehouse * cfg.customers_per_district
    return [
        TableSchema(WAREHOUSE, "warehouse", IndexKind.HASH, n_fields=3,
                    hash_buckets=64, partition_fn=_by_warehouse(1)),
        TableSchema(DISTRICT, "district", IndexKind.HASH, n_fields=4,
                    hash_buckets=64, partition_fn=_by_warehouse(100)),
        TableSchema(CUSTOMER, "customer", IndexKind.HASH, n_fields=5,
                    hash_buckets=buckets(per_part_customers),
                    partition_fn=_by_warehouse(10**7)),
        TableSchema(ITEM, "item", IndexKind.HASH, n_fields=2,
                    hash_buckets=buckets(cfg.items), replicated=True),
        TableSchema(STOCK, "stock", IndexKind.HASH, n_fields=3,
                    hash_buckets=buckets(cfg.items),
                    partition_fn=_by_warehouse(10**6)),
        TableSchema(ORDERS, "orders", IndexKind.HASH, n_fields=3,
                    hash_buckets=buckets(1 << 15),
                    partition_fn=_by_warehouse(10**9)),
        TableSchema(NEW_ORDER, "new_order", IndexKind.HASH, n_fields=1,
                    hash_buckets=buckets(1 << 15),
                    partition_fn=_by_warehouse(10**9)),
        TableSchema(ORDER_LINE, "order_line", IndexKind.HASH, n_fields=3,
                    hash_buckets=buckets(1 << 17),
                    partition_fn=_by_warehouse(10**11)),
        TableSchema(HISTORY, "history", IndexKind.HASH, n_fields=2,
                    hash_buckets=buckets(1 << 14),
                    partition_fn=_by_warehouse(10**13)),
    ]
