"""TPC-C stored procedures in the BionicDB ISA.

Payment and NewOrder were the two transactions the paper ran (50:50
mix).  Payment was modified — as in the paper — to pick the customer by
customer id (no last-name secondary index probe).  NewOrder procedures
are fully unrolled per order-line count (proc id ``PROC_NEWORDER_BASE +
ol_cnt``), which is what gives NewOrder its intra-transaction index
parallelism; its order-id data dependency (district.next_o_id feeds the
ORDER/ORDER-LINE insert keys) is expressed with a blocking RET in the
transaction logic, which is exactly why TPC-C interleaves poorly
(§5.6).

NewOrder transaction-block input layout (K = ol_cnt)::

    @0 warehouse key        @1 district key     @2 customer key
    @3 orders base key      @4 ol_cnt
    @5+3i item key          @6+3i stock key     @7+3i quantity
    @5+3K ORDERS payload    @6+3K NEW_ORDER payload ([])
    @7+3K+i ORDER_LINE payload for line i

Payment input layout::

    @0 warehouse key  @1 district key  @2 customer key
    @3 amount         @4 (history key, [amount, data])
"""

from __future__ import annotations

from ...isa.builder import ProcedureBuilder
from ...isa.instructions import Gp, Program
from ...mem.txnblock import BlockLayout
from . import schema as S

__all__ = [
    "PROC_PAYMENT", "PROC_NEWORDER_BASE", "PROC_STOCKLEVEL",
    "PROC_ORDERSTATUS", "PROC_DELIVERY",
    "payment_procedure", "neworder_procedure", "stocklevel_procedure",
    "orderstatus_procedure", "delivery_procedure",
    "payment_layout", "neworder_layout", "stocklevel_layout",
    "orderstatus_layout", "delivery_layout",
    "MIN_OL_CNT", "MAX_OL_CNT",
]

PROC_PAYMENT = 10
PROC_NEWORDER_BASE = 20  # + ol_cnt
PROC_STOCKLEVEL = 40
MIN_OL_CNT = 5
MAX_OL_CNT = 15


def payment_layout() -> BlockLayout:
    return BlockLayout(n_inputs=5, n_outputs=2, n_scratch=2, n_undo=8, n_scan=1)


def payment_procedure() -> Program:
    """Pay ``amount``: warehouse.ytd += a, district.ytd += a,
    customer.balance -= a & payment_cnt += 1, insert HISTORY row."""
    b = ProcedureBuilder("tpcc_payment")
    b.update(cp=0, table=S.WAREHOUSE, key=b.at(0))
    b.update(cp=1, table=S.DISTRICT, key=b.at(1))
    b.update(cp=2, table=S.CUSTOMER, key=b.at(2))
    b.insert(cp=3, table=S.HISTORY, key=b.at(4))

    b.commit_handler()
    b.load(2, b.at(3))                  # amount (working-set hit)
    # warehouse.ytd += amount
    b.ret(0, 0)
    b.load(1, b.fld(0, S.W_FIELD_YTD))
    b.add(1, Gp(1), Gp(2))
    b.wrfield(0, S.W_FIELD_YTD, Gp(1))
    # district.ytd += amount
    b.ret(0, 1)
    b.load(1, b.fld(0, S.D_FIELD_YTD))
    b.add(1, Gp(1), Gp(2))
    b.wrfield(0, S.D_FIELD_YTD, Gp(1))
    # customer.balance -= amount; payment_cnt += 1
    b.ret(0, 2)
    b.load(1, b.fld(0, S.C_FIELD_BALANCE))
    b.sub(1, Gp(1), Gp(2))
    b.wrfield(0, S.C_FIELD_BALANCE, Gp(1))
    b.load(3, b.fld(0, S.C_FIELD_PAYMENT_CNT))
    b.add(3, Gp(3), 1)
    b.wrfield(0, S.C_FIELD_PAYMENT_CNT, Gp(3))
    # history insert acknowledged
    b.ret(4, 3)
    b.store(Gp(1), b.at(payment_layout().out))  # new balance -> output
    b.commit()
    return b.build()


def stocklevel_layout() -> BlockLayout:
    return BlockLayout(n_inputs=6, n_outputs=2, n_scratch=2, n_undo=2,
                       n_scan=1)


def stocklevel_procedure(max_lines: int = 10) -> Program:
    """TPC-C StockLevel (read-only, extension beyond the paper's mix).

    Counts stock entries below a threshold over the order lines of the
    district's most recent orders.  Unlike Payment/NewOrder this uses
    *dynamic* ISA loops with computed keys and RETN (null-tolerant
    collection) for order-line slots that may not exist.

    Input layout: @0 warehouse key, @1 district key, @2 threshold,
    @3 orders base key, @4 lookback (how many recent orders),
    @5 stock key base (w * 10^6).  Output: the low-stock count.
    Simplification vs the spec: items are not de-duplicated.
    """
    layout = stocklevel_layout()
    b = ProcedureBuilder("tpcc_stocklevel")
    b.search(cp=0, table=S.DISTRICT, key=b.at(1))
    b.ret(0, 0)
    b.load(1, b.fld(0, S.D_FIELD_NEXT_O_ID))   # next_o_id
    b.load(2, b.at(4))                          # lookback
    b.sub(3, Gp(1), Gp(2))                      # o = next_o_id - lookback
    b.mov(10, 0)                                # low-stock count
    b.label("order_loop")
    b.cmp(Gp(3), Gp(1))
    b.bge("done")
    b.load(4, b.at(3))                          # orders base key
    b.add(4, Gp(4), Gp(3))                      # order key
    b.mul(5, Gp(4), 100)                        # order-line key base
    b.mov(6, 1)                                 # line number
    b.label("line_loop")
    b.cmp(Gp(6), max_lines + 1)
    b.bge("next_order")
    b.add(7, Gp(5), Gp(6))
    b.search(cp=1, table=S.ORDER_LINE, key=Gp(7))
    b.retn(8, 1)                                # 0 if the line is absent
    b.cmp(Gp(8), 0)
    b.be("next_line")
    b.load(9, b.fld(8, 0))                      # item id
    b.load(11, b.at(5))                         # stock key base
    b.add(11, Gp(11), Gp(9))
    b.search(cp=2, table=S.STOCK, key=Gp(11))
    b.ret(12, 2)
    b.load(13, b.fld(12, S.S_FIELD_QUANTITY))
    b.load(14, b.at(2))                         # threshold
    b.cmp(Gp(13), Gp(14))
    b.bge("next_line")
    b.add(10, Gp(10), 1)
    b.label("next_line")
    b.add(6, Gp(6), 1)
    b.jmp("line_loop")
    b.label("next_order")
    b.add(3, Gp(3), 1)
    b.jmp("order_loop")
    b.label("done")
    b.store(Gp(10), b.at(layout.out))
    b.commit_handler()
    b.commit()
    return b.build()


PROC_ORDERSTATUS = 41
PROC_DELIVERY = 42


def orderstatus_layout() -> BlockLayout:
    return BlockLayout(n_inputs=2, n_outputs=3, n_scratch=2, n_undo=2,
                       n_scan=1)


def orderstatus_procedure() -> Program:
    """TPC-C OrderStatus (read-only, extension beyond the paper's mix).

    Reads the customer's balance and walks the order lines of their
    most recent order, found via the last-order pointer NewOrder
    maintains in the customer row.  Inputs: @0 customer key.
    Outputs: balance, last order key, line count.
    """
    layout = orderstatus_layout()
    b = ProcedureBuilder("tpcc_orderstatus")
    b.search(cp=0, table=S.CUSTOMER, key=b.at(0))
    b.ret(0, 0)
    b.load(1, b.fld(0, S.C_FIELD_BALANCE))
    b.load(2, b.fld(0, S.C_FIELD_LAST_O))
    b.mov(5, 0)                              # line count
    b.cmp(Gp(2), 0)
    b.be("done")                             # customer never ordered
    b.search(cp=1, table=S.ORDERS, key=Gp(2))
    b.ret(3, 1)
    b.load(4, b.fld(3, S.O_FIELD_OL_CNT))
    b.mul(6, Gp(2), 100)                     # order-line key base
    b.mov(7, 1)
    b.label("line_loop")
    b.cmp(Gp(7), Gp(4))
    b.bgt("done")
    b.add(8, Gp(6), Gp(7))
    b.search(cp=2, table=S.ORDER_LINE, key=Gp(8))
    b.ret(9, 2)
    b.load(10, b.fld(9, S.OL_FIELD_I_ID))    # touch the line
    b.add(5, Gp(5), 1)
    b.add(7, Gp(7), 1)
    b.jmp("line_loop")
    b.label("done")
    b.store(Gp(1), b.at(layout.out))
    b.store(Gp(2), b.at(layout.out + 1))
    b.store(Gp(5), b.at(layout.out + 2))
    b.commit_handler()
    b.commit()
    return b.build()


def delivery_layout(districts: int = 10, max_lines: int = 15) -> BlockLayout:
    # UNDO slots: per district, up to carrier + lines + balance + pointer
    return BlockLayout(n_inputs=3, n_outputs=2, n_scratch=2,
                       n_undo=districts * (max_lines + 3) + 4, n_scan=1)


def delivery_procedure(districts: int = 10, max_lines: int = 15) -> Program:
    """TPC-C Delivery (extension beyond the paper's mix).

    For each district of the warehouse: take the oldest undelivered
    order (the district row's next-delivery pointer), remove its
    NEW_ORDER row, stamp the order's carrier, mark its order lines
    delivered, credit the customer's balance with the line quantities
    (simplification: amounts are quantities), and advance the pointer.
    Inputs: @0 warehouse id (plain w), @1 carrier id, @2 delivery date.
    Output: number of orders delivered.

    A single heavy read-write transaction with dynamic loops, RETN
    probes and per-district data dependencies — the stress test for the
    softcore's control flow.
    """
    layout = delivery_layout()
    b = ProcedureBuilder("tpcc_delivery")
    b.load(0, b.at(0))                       # w
    b.mov(15, 0)                             # delivered count
    b.mov(1, 1)                              # d
    b.label("district_loop")
    b.cmp(Gp(1), districts + 1)
    b.bge("done")
    # district key and row
    b.mul(2, Gp(0), 100)
    b.add(2, Gp(2), Gp(1))                   # dkey
    b.update(cp=0, table=S.DISTRICT, key=Gp(2))
    b.ret(3, 0)
    b.load(4, b.fld(3, S.D_FIELD_NEXT_DELIV))
    b.load(5, b.fld(3, S.D_FIELD_NEXT_O_ID))
    b.cmp(Gp(4), Gp(5))
    b.bge("next_district")                   # nothing undelivered
    # okey = dkey * 10^7 + next_deliv
    b.mul(6, Gp(2), 10_000_000)
    b.add(6, Gp(6), Gp(4))
    b.remove(cp=1, table=S.NEW_ORDER, key=Gp(6))
    b.retn(7, 1)
    b.cmp(Gp(7), 0)
    b.be("advance")                          # order already delivered
    b.update(cp=2, table=S.ORDERS, key=Gp(6))
    b.ret(8, 2)
    b.load(9, b.fld(8, S.O_FIELD_C_ID))      # c_id
    b.load(10, b.fld(8, S.O_FIELD_OL_CNT))   # ol_cnt
    b.load(11, b.at(1))                      # carrier id
    b.wrfield(8, S.O_FIELD_CARRIER, Gp(11))
    # walk the lines: stamp delivery date, sum quantities
    b.mul(12, Gp(6), 100)                    # ol key base
    b.mov(13, 1)
    b.mov(14, 0)                             # amount (qty sum)
    b.label("line_loop")
    b.cmp(Gp(13), Gp(10))
    b.bgt("credit")
    b.add(16, Gp(12), Gp(13))
    b.update(cp=3, table=S.ORDER_LINE, key=Gp(16))
    b.ret(17, 3)
    b.load(18, b.fld(17, S.OL_FIELD_QTY))
    b.add(14, Gp(14), Gp(18))
    b.load(19, b.at(2))                      # delivery date
    b.wrfield(17, S.OL_FIELD_DELIVERY_D, Gp(19))
    b.add(13, Gp(13), 1)
    b.jmp("line_loop")
    b.label("credit")
    # customer key = dkey * 100000 + c_id
    b.mul(20, Gp(2), 100_000)
    b.add(20, Gp(20), Gp(9))
    b.update(cp=4, table=S.CUSTOMER, key=Gp(20))
    b.ret(21, 4)
    b.load(22, b.fld(21, S.C_FIELD_BALANCE))
    b.add(22, Gp(22), Gp(14))
    b.wrfield(21, S.C_FIELD_BALANCE, Gp(22))
    b.add(15, Gp(15), 1)
    b.label("advance")
    b.add(4, Gp(4), 1)
    b.wrfield(3, S.D_FIELD_NEXT_DELIV, Gp(4))
    b.label("next_district")
    b.add(1, Gp(1), 1)
    b.jmp("district_loop")
    b.label("done")
    b.store(Gp(15), b.at(layout.out))
    b.commit_handler()
    b.commit()
    return b.build()


def neworder_layout(ol_cnt: int) -> BlockLayout:
    # UNDO slots: district next_o_id + two stock fields per line
    return BlockLayout(n_inputs=4 * ol_cnt + 7, n_outputs=2, n_scratch=2,
                       n_undo=2 * ol_cnt + 4, n_scan=1)


def neworder_procedure(ol_cnt: int) -> Program:
    """One NewOrder with exactly ``ol_cnt`` order lines (unrolled)."""
    if not MIN_OL_CNT <= ol_cnt <= MAX_OL_CNT:
        raise ValueError(f"ol_cnt must be in [{MIN_OL_CNT}, {MAX_OL_CNT}]")
    K = ol_cnt
    layout = neworder_layout(K)
    b = ProcedureBuilder(f"tpcc_neworder_{K}")

    cp_wh, cp_dist, cp_cust = 0, 1, 2
    cp_item = lambda i: 3 + i                 # noqa: E731
    cp_stock = lambda i: 3 + K + i            # noqa: E731
    cp_order = 3 + 2 * K
    cp_new_order = cp_order + 1
    cp_ol = lambda i: cp_order + 2 + i        # noqa: E731

    # ---- transaction logic -------------------------------------------
    # independent probes dispatched back to back (index parallelism).
    # The customer takes a write intent: NewOrder maintains the
    # customer's last-order pointer (used by OrderStatus).
    b.search(cp=cp_wh, table=S.WAREHOUSE, key=b.at(0))
    b.update(cp=cp_dist, table=S.DISTRICT, key=b.at(1))
    b.update(cp=cp_cust, table=S.CUSTOMER, key=b.at(2))
    for i in range(K):
        b.search(cp=cp_item(i), table=S.ITEM, key=b.at(5 + 3 * i))
    for i in range(K):
        b.update(cp=cp_stock(i), table=S.STOCK, key=b.at(6 + 3 * i))

    # the data dependency: the order id gates every insert key
    b.ret(0, cp_dist)                      # blocks for the district tuple
    b.load(1, b.fld(0, S.D_FIELD_NEXT_O_ID))
    b.add(2, Gp(1), 1)
    b.wrfield(0, S.D_FIELD_NEXT_O_ID, Gp(2))
    b.load(3, b.at(3))                     # orders base key
    b.add(4, Gp(3), Gp(1))                 # o_key
    b.insert(cp=cp_order, table=S.ORDERS, key=Gp(4),
             payload=b.at(5 + 3 * K))
    b.insert(cp=cp_new_order, table=S.NEW_ORDER, key=Gp(4),
             payload=b.at(6 + 3 * K))
    for i in range(K):
        b.mul(5, Gp(4), 100)
        b.add(5, Gp(5), i + 1)
        b.insert(cp=cp_ol(i), table=S.ORDER_LINE, key=Gp(5),
                 payload=b.at(7 + 3 * K + i))

    # stock quantity maintenance (more blocking RETs)
    for i in range(K):
        b.ret(6, cp_stock(i))
        b.load(7, b.fld(6, S.S_FIELD_QUANTITY))
        b.load(8, b.at(7 + 3 * i))         # ordered quantity
        b.sub(7, Gp(7), Gp(8))
        b.cmp(Gp(7), 10)
        b.bge(f"stock_ok_{i}")
        b.add(7, Gp(7), 91)
        b.label(f"stock_ok_{i}")
        b.wrfield(6, S.S_FIELD_QUANTITY, Gp(7))
        b.load(9, b.fld(6, S.S_FIELD_ORDER_CNT))
        b.add(9, Gp(9), 1)
        b.wrfield(6, S.S_FIELD_ORDER_CNT, Gp(9))

    # ---- commit handler -----------------------------------------------
    b.commit_handler()
    b.ret(0, cp_wh)
    b.ret(0, cp_cust)
    b.wrfield(0, S.C_FIELD_LAST_O, Gp(4))  # customer's last order key
    b.mov(11, 0)                           # order total
    for i in range(K):
        b.ret(9, cp_item(i))
        b.load(10, b.fld(9, S.I_FIELD_PRICE))
        b.load(8, b.at(7 + 3 * i))
        b.mul(10, Gp(10), Gp(8))
        b.add(11, Gp(11), Gp(10))
    b.ret(0, cp_order)
    b.ret(0, cp_new_order)
    for i in range(K):
        b.ret(0, cp_ol(i))
    b.store(Gp(11), b.at(layout.out))      # order total -> output
    b.store(Gp(4), b.at(layout.out + 1))   # o_key -> output
    b.commit()
    return b.build()
