"""TPC-C loader and transaction generator.

Generates the 50:50 NewOrder/Payment mix of §5.3: by default 1% of
NewOrders touch a remote warehouse's stock and 15% of Payments pay a
remote customer; both fractions are knobs (Figure 13 style sweeps).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...core.system import BionicDB
from ...errors import WorkloadError
from ..ycsb import TxnSpec
from . import schema as S
from .procedures import (
    MAX_OL_CNT, MIN_OL_CNT, PROC_DELIVERY, PROC_NEWORDER_BASE,
    PROC_ORDERSTATUS, PROC_PAYMENT, PROC_STOCKLEVEL,
    delivery_layout, delivery_procedure, neworder_layout,
    neworder_procedure, orderstatus_layout, orderstatus_procedure,
    payment_layout, payment_procedure, stocklevel_layout,
    stocklevel_procedure,
)

__all__ = ["TpccWorkload", "nurand"]


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C's non-uniform random distribution NURand(A, x, y)."""
    return ((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1) + x


class TpccWorkload:
    """Installs TPC-C on a BionicDB and generates NewOrder/Payment mixes."""

    def __init__(self, config: Optional[S.TpccConfig] = None):
        self.config = config or S.TpccConfig()
        self._rng = random.Random(self.config.seed)
        self._history_counter = 0

    # -- install ---------------------------------------------------------
    def install(self, db: BionicDB, load_data: bool = True) -> None:
        """``load_data=False`` installs schema and procedures only —
        the recovery path, where data comes from a checkpoint image."""
        cfg = self.config
        if db.config.n_workers != cfg.n_partitions:
            raise ValueError("workload partitions must match db workers")
        for schema in S.tpcc_schemas(cfg):
            db.define_table(schema)
        db.register_procedure(PROC_PAYMENT, payment_procedure())
        for k in range(MIN_OL_CNT, MAX_OL_CNT + 1):
            db.register_procedure(PROC_NEWORDER_BASE + k, neworder_procedure(k))
        db.register_procedure(PROC_STOCKLEVEL, stocklevel_procedure())
        db.register_procedure(PROC_ORDERSTATUS, orderstatus_procedure())
        db.register_procedure(
            PROC_DELIVERY,
            delivery_procedure(districts=cfg.districts_per_warehouse))
        if load_data:
            self._load(db)

    def _load(self, db: BionicDB) -> None:
        cfg = self.config
        rng = random.Random(cfg.seed + 1)

        def rows():
            # exactly the row (and rng-draw) order of the original
            # per-row loader: heap allocation order is load-bearing for
            # simulated timing (DRAM channel = address % channels)
            for i in range(1, cfg.items + 1):
                yield S.ITEM, i, [f"item{i}", rng.randint(1, 100)]
            for w in range(1, cfg.n_warehouses + 1):
                yield (S.WAREHOUSE, S.warehouse_key(w),
                       [f"w{w}", rng.randint(0, 20) / 100.0, 0])
                for i in range(1, cfg.items + 1):
                    yield (S.STOCK, S.stock_key(w, i),
                           [rng.randint(10, 100), 0, 0])
                for d in range(1, cfg.districts_per_warehouse + 1):
                    yield (S.DISTRICT, S.district_key(w, d),
                           [rng.randint(0, 20) / 100.0, 0, 1, 1])
                    for c in range(1, cfg.customers_per_district + 1):
                        yield (S.CUSTOMER, S.customer_key(w, d, c),
                               [f"c{w}.{d}.{c}", 0, 0, 0, 0])

        db.load_many(rows())

    # -- generators ----------------------------------------------------------
    def _home_of(self, w: int) -> int:
        return (w - 1) % self.config.n_partitions

    def _pick_customer(self, rng: random.Random) -> int:
        return nurand(rng, 1023, 1, self.config.customers_per_district)

    def make_payment(self) -> TxnSpec:
        cfg = self.config
        rng = self._rng
        w = rng.randint(1, cfg.n_warehouses)
        d = rng.randint(1, cfg.districts_per_warehouse)
        # 15% of payments pay a customer of a *remote* warehouse
        if cfg.n_warehouses > 1 and rng.random() < cfg.remote_payment_fraction:
            cw = rng.choice([x for x in range(1, cfg.n_warehouses + 1) if x != w])
        else:
            cw = w
        cd = rng.randint(1, cfg.districts_per_warehouse)
        c = self._pick_customer(rng)
        amount = rng.randint(1, 5000)
        self._history_counter += 1
        h_key = S.history_key(cw, self._history_counter)
        inputs = (
            S.warehouse_key(w),
            S.district_key(w, d),
            S.customer_key(cw, cd, c),
            amount,
            (h_key, [amount, f"pay w{w} d{d}"]),
        )
        return TxnSpec(proc_id=PROC_PAYMENT, inputs=inputs,
                       home=self._home_of(w), kind="payment",
                       keys=(w, d, cw, cd, c, amount, h_key))

    def make_neworder(self) -> TxnSpec:
        cfg = self.config
        rng = self._rng
        w = rng.randint(1, cfg.n_warehouses)
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = self._pick_customer(rng)
        K = rng.randint(MIN_OL_CNT, MAX_OL_CNT)
        remote_txn = (cfg.n_warehouses > 1 and
                      rng.random() < cfg.remote_neworder_fraction)
        items, supplies, qtys = [], [], []
        seen = set()
        while len(items) < K:
            i = nurand(rng, 8191, 1, cfg.items)
            if i in seen:
                continue
            seen.add(i)
            items.append(i)
            supplies.append(w)
            qtys.append(rng.randint(1, 10))
        if remote_txn:
            # one line supplied by a remote warehouse
            line = rng.randrange(K)
            supplies[line] = rng.choice(
                [x for x in range(1, cfg.n_warehouses + 1) if x != w])
        inputs: List = [
            S.warehouse_key(w), S.district_key(w, d),
            S.customer_key(w, d, c), S.orders_base(w, d), K,
        ]
        for i in range(K):
            inputs.extend([items[i], S.stock_key(supplies[i], items[i]), qtys[i]])
        inputs.append([c, K, 20190326])      # ORDERS payload
        inputs.append([])                    # NEW_ORDER payload
        for i in range(K):
            inputs.append([items[i], qtys[i], 0])  # ORDER_LINE payloads
        return TxnSpec(proc_id=PROC_NEWORDER_BASE + K, inputs=tuple(inputs),
                       home=self._home_of(w), kind="neworder",
                       keys=(w, d, c, K, tuple(items), tuple(supplies),
                             tuple(qtys)))

    def make_stocklevel(self, lookback: int = 5) -> TxnSpec:
        """A read-only StockLevel over the district's recent orders."""
        cfg = self.config
        rng = self._rng
        w = rng.randint(1, cfg.n_warehouses)
        d = rng.randint(1, cfg.districts_per_warehouse)
        threshold = rng.randint(10, 20)
        inputs = (
            S.warehouse_key(w), S.district_key(w, d), threshold,
            S.orders_base(w, d), lookback, w * 1_000_000,
        )
        return TxnSpec(proc_id=PROC_STOCKLEVEL, inputs=inputs,
                       home=self._home_of(w), kind="stocklevel",
                       keys=(w, d, threshold, lookback))

    def make_orderstatus(self) -> TxnSpec:
        """Read a customer's balance and latest order (extension)."""
        cfg = self.config
        rng = self._rng
        w = rng.randint(1, cfg.n_warehouses)
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = self._pick_customer(rng)
        inputs = (S.customer_key(w, d, c), 0)
        return TxnSpec(proc_id=PROC_ORDERSTATUS, inputs=inputs,
                       home=self._home_of(w), kind="orderstatus",
                       keys=(w, d, c))

    def make_delivery(self, carrier: Optional[int] = None) -> TxnSpec:
        """Deliver the oldest undelivered order per district (extension)."""
        cfg = self.config
        rng = self._rng
        w = rng.randint(1, cfg.n_warehouses)
        carrier = carrier if carrier is not None else rng.randint(1, 10)
        inputs = (w, carrier, 20190327)
        return TxnSpec(proc_id=PROC_DELIVERY, inputs=inputs,
                       home=self._home_of(w), kind="delivery",
                       keys=(w, carrier))

    def make_mix(self, n_txns: int, neworder_fraction: float = 0.5) -> List[TxnSpec]:
        """The paper's 50:50 NewOrder/Payment mix."""
        if not 0.0 <= neworder_fraction <= 1.0:
            raise WorkloadError("neworder_fraction must be in [0, 1]",
                                neworder_fraction=neworder_fraction)
        out = []
        for _ in range(n_txns):
            if self._rng.random() < neworder_fraction:
                out.append(self.make_neworder())
            else:
                out.append(self.make_payment())
        return out

    def make_full_mix(self, n_txns: int) -> List[TxnSpec]:
        """The standard TPC-C 5-transaction mix (45/43/4/4/4) —
        extension beyond the paper's NewOrder/Payment evaluation."""
        out = []
        for _ in range(n_txns):
            roll = self._rng.random()
            if roll < 0.45:
                out.append(self.make_neworder())
            elif roll < 0.88:
                out.append(self.make_payment())
            elif roll < 0.92:
                out.append(self.make_orderstatus())
            elif roll < 0.96:
                out.append(self.make_delivery())
            else:
                out.append(self.make_stocklevel())
        return out

    # -- submission ---------------------------------------------------------------
    def layout_for(self, spec: TxnSpec):
        """The block layout one generated transaction needs."""
        if spec.kind == "payment":
            return payment_layout()
        if spec.kind == "stocklevel":
            return stocklevel_layout()
        if spec.kind == "orderstatus":
            return orderstatus_layout()
        if spec.kind == "delivery":
            return delivery_layout(
                districts=self.config.districts_per_warehouse)
        return neworder_layout(spec.keys[3])

    def submit_all(self, db: BionicDB, specs: Sequence[TxnSpec],
                   retry: bool = True):
        blocks, homes = [], []
        for spec in specs:
            blocks.append(db.new_block(spec.proc_id, list(spec.inputs),
                                       layout=self.layout_for(spec),
                                       worker=spec.home))
            homes.append(spec.home)
        if retry:
            return db.run_to_commit(blocks, workers=homes), blocks
        return db.run_all(blocks, workers=homes), blocks
