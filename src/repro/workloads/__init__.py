"""Workloads: YCSB, TPC-C and key distributions."""

from .tpcc import TpccConfig, TpccWorkload
from .ycsb import TxnSpec, YcsbConfig, YcsbWorkload
from .zipf import ScrambledZipfianGenerator, UniformGenerator, ZipfianGenerator

__all__ = [
    "TpccConfig", "TpccWorkload", "TxnSpec", "YcsbConfig", "YcsbWorkload",
    "ScrambledZipfianGenerator", "UniformGenerator", "ZipfianGenerator",
]
