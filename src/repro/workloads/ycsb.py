"""YCSB workload (§5.3).

The paper's YCSB transaction issues 16 independent DB accesses with no
data dependency over a table of 8-byte integer keys and 1 KB payloads,
300 K records per partition.  YCSB-C is read-only; YCSB-E was modified
to be scan-only with a fixed range of 50 records; YCSB-B was omitted
(results matched C).  Keys are partitioned by range: partition
``key // records_per_partition``.

This module provides schemas, stored procedures (in the BionicDB ISA)
and transaction generators.  The same :class:`TxnSpec` descriptors
drive the software baseline so comparisons run identical request
streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.system import BionicDB
from ..errors import WorkloadError
from ..isa.builder import ProcedureBuilder
from ..isa.instructions import Gp, Program
from ..mem.schema import IndexKind, TableSchema
from ..mem.txnblock import BlockLayout
from .zipf import ScrambledZipfianGenerator, UniformGenerator

__all__ = ["YcsbConfig", "TxnSpec", "YcsbWorkload",
           "YCSB_TABLE", "PROC_READ_BASE", "PROC_SCAN", "PROC_RANGE",
           "PROC_RMW_BASE", "PROC_MIX_BASE"]

YCSB_TABLE = 0
#: proc id for an N-read transaction is PROC_READ_BASE + N
PROC_READ_BASE = 100
PROC_RMW_BASE = 300
PROC_SCAN = 200
PROC_RANGE = 201
#: proc id for a mixed transaction is PROC_MIX_BASE + n_updates
#: (total accesses fixed by the config)
PROC_MIX_BASE = 500


@dataclass(frozen=True)
class TxnSpec:
    """One generated transaction: shared by BionicDB and the baseline."""

    proc_id: int
    inputs: tuple
    home: int
    kind: str            # "read" | "scan" | "rmw"
    keys: tuple          # the accessed keys (baseline executes these)


@dataclass
class YcsbConfig:
    records_per_partition: int = 30_000   # paper: 300 K (scaled knob)
    n_partitions: int = 4
    reads_per_txn: int = 16
    scan_length: int = 50                 # paper's modified YCSB-E
    payload: str = "x" * 64               # stands in for the 1 KB row
    index_kind: str = IndexKind.HASH      # YCSB-E uses SKIPLIST
    zipfian: bool = False                 # paper's multisite runs are uniform
    remote_fraction: float = 0.0          # Figure 13: 0.75
    seed: int = 42

    def __post_init__(self):
        for name in ("records_per_partition", "n_partitions",
                     "reads_per_txn", "scan_length"):
            if getattr(self, name) < 1:
                raise WorkloadError(f"{name} must be >= 1",
                                    **{name: getattr(self, name)})
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise WorkloadError("remote_fraction must be in [0, 1]",
                                remote_fraction=self.remote_fraction)
        if self.index_kind not in (IndexKind.HASH, IndexKind.SKIPLIST,
                                   IndexKind.BPTREE):
            raise WorkloadError(f"unknown index kind {self.index_kind!r}")

    @property
    def total_records(self) -> int:
        return self.records_per_partition * self.n_partitions


class YcsbWorkload:
    """Installs YCSB on a BionicDB and generates transaction streams."""

    def __init__(self, config: Optional[YcsbConfig] = None):
        self.config = config or YcsbConfig()
        self._rng = random.Random(self.config.seed)
        if self.config.zipfian:
            self._keygen = ScrambledZipfianGenerator(
                self.config.total_records, seed=self.config.seed)
        else:
            self._keygen = UniformGenerator(
                self.config.total_records, seed=self.config.seed)

    # -- schema ------------------------------------------------------------
    def schema(self) -> TableSchema:
        cfg = self.config
        per_part = cfg.records_per_partition

        def partition_fn(key, n_partitions):
            return min(key // per_part, n_partitions - 1)

        buckets = 1 << max(8, (per_part * 2 - 1).bit_length())
        return TableSchema(YCSB_TABLE, "usertable",
                           index_kind=cfg.index_kind,
                           n_fields=1, hash_buckets=buckets,
                           partition_fn=partition_fn,
                           range_partitioned=True)

    # -- stored procedures -----------------------------------------------------
    @staticmethod
    def read_procedure(n_reads: int) -> Program:
        """N independent SEARCHes; the commit handler collects each
        result and publishes the tuple address to the output buffer."""
        b = ProcedureBuilder(f"ycsb_read_{n_reads}")
        for i in range(n_reads):
            b.search(cp=i, table=YCSB_TABLE, key=b.at(i))
        b.commit_handler()
        for i in range(n_reads):
            b.ret(0, i)
            b.store(Gp(0), b.at(n_reads + i))
        b.commit()
        return b.build()

    @staticmethod
    def rmw_procedure(n_ops: int) -> Program:
        """Read-modify-write variant (used by extension benches)."""
        b = ProcedureBuilder(f"ycsb_rmw_{n_ops}")
        for i in range(n_ops):
            b.update(cp=i, table=YCSB_TABLE, key=b.at(i))
        b.commit_handler()
        for i in range(n_ops):
            b.ret(0, i)
            b.load(1, b.at(n_ops + i))
            b.wrfield(0, 0, Gp(1))
        b.commit()
        return b.build()

    @staticmethod
    def mixed_procedure(n_reads: int, n_updates: int) -> Program:
        """YCSB-A/B style transaction: reads then UNDO-logged updates.

        Input layout: keys at @0..@total-1 (reads first), new values at
        @total..@total+n_updates-1; outputs follow.
        """
        total = n_reads + n_updates
        b = ProcedureBuilder(f"ycsb_mix_{n_reads}r{n_updates}u")
        for i in range(n_reads):
            b.search(cp=i, table=YCSB_TABLE, key=b.at(i))
        for j in range(n_updates):
            b.update(cp=n_reads + j, table=YCSB_TABLE, key=b.at(n_reads + j))
        b.commit_handler()
        for i in range(n_reads):
            b.ret(0, i)
            b.store(Gp(0), b.at(total + n_updates + i))
        for j in range(n_updates):
            b.ret(0, n_reads + j)
            b.load(1, b.at(total + j))
            b.wrfield(0, 0, Gp(1))
        b.commit()
        return b.build()

    @staticmethod
    def scan_procedure(scan_length: int, layout: BlockLayout) -> Program:
        """The modified YCSB-E transaction: one fixed-length scan."""
        b = ProcedureBuilder(f"ycsb_scan_{scan_length}")
        b.scan(cp=0, table=YCSB_TABLE, key=b.at(0), count=scan_length,
               out=b.at(layout.scan))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(layout.out))  # publish the collected count
        b.commit()
        return b.build()

    @staticmethod
    def range_procedure(scan_length: int, layout: BlockLayout) -> Program:
        """YCSB-E with an explicit high key: scan [lo, hi] bounded by
        both the key range and a count limit (skiplist or B+ tree)."""
        b = ProcedureBuilder(f"ycsb_range_{scan_length}")
        b.range_scan(cp=0, table=YCSB_TABLE, lo=b.at(0), hi=b.at(1),
                     count=scan_length, out=b.at(layout.scan))
        b.commit_handler()
        b.ret(0, 0)
        b.store(Gp(0), b.at(layout.out))  # publish the collected count
        b.commit()
        return b.build()

    # -- installation -------------------------------------------------------------
    def install(self, db: BionicDB, procedures: Sequence[int] = (),
                load_data: bool = True) -> None:
        """Define the table, register procedures, bulk-load all rows.

        ``load_data=False`` installs schema and procedures only — the
        recovery path, where data comes from a checkpoint image."""
        cfg = self.config
        if db.config.n_workers != cfg.n_partitions:
            raise ValueError("workload partitions must match db workers")
        db.define_table(self.schema())
        sizes = sorted(set(procedures) or {cfg.reads_per_txn})
        for n in sizes:
            db.register_procedure(PROC_READ_BASE + n, self.read_procedure(n))
            db.register_procedure(PROC_RMW_BASE + n, self.rmw_procedure(n))
        db.register_procedure(
            PROC_SCAN, self.scan_procedure(cfg.scan_length, self.scan_layout()))
        if cfg.index_kind != IndexKind.HASH:
            db.register_procedure(
                PROC_RANGE,
                self.range_procedure(cfg.scan_length, self.range_layout()))
        if not load_data:
            return
        # batched fast path; row order (and so heap addresses) matches
        # per-row db.load exactly
        payload = cfg.payload
        db.load_many((YCSB_TABLE, key, [payload])
                     for key in range(cfg.total_records))

    # -- block layouts -----------------------------------------------------------
    def read_layout(self, n_reads: Optional[int] = None) -> BlockLayout:
        n = n_reads or self.config.reads_per_txn
        return BlockLayout(n_inputs=n, n_outputs=n, n_scratch=2,
                           n_undo=max(4, n), n_scan=4)

    def scan_layout(self) -> BlockLayout:
        # @0 start key, @1 count out; scan buffer directly after
        return BlockLayout(n_inputs=1, n_outputs=1, n_scratch=0, n_undo=2,
                           n_scan=self.config.scan_length + 14)

    def range_layout(self) -> BlockLayout:
        # @0 low key, @1 high key, @2 count out; scan buffer after
        return BlockLayout(n_inputs=2, n_outputs=1, n_scratch=0, n_undo=2,
                           n_scan=self.config.scan_length + 14)

    # -- transaction generators -----------------------------------------------------
    def _pick_key(self, home: int) -> int:
        cfg = self.config
        if cfg.remote_fraction > 0 and self._rng.random() < cfg.remote_fraction:
            # any key outside the home partition (multisite access)
            while True:
                key = self._keygen.next()
                if key // cfg.records_per_partition != home:
                    return key
        lo = home * cfg.records_per_partition
        return lo + self._keygen.next() % cfg.records_per_partition

    def make_read_txns(self, n_txns: int,
                       reads_per_txn: Optional[int] = None) -> List[TxnSpec]:
        cfg = self.config
        n_reads = reads_per_txn or cfg.reads_per_txn
        out = []
        for t in range(n_txns):
            home = t % cfg.n_partitions
            keys = tuple(self._pick_key(home) for _ in range(n_reads))
            out.append(TxnSpec(proc_id=PROC_READ_BASE + n_reads, inputs=keys,
                               home=home, kind="read", keys=keys))
        return out

    def make_rmw_txns(self, n_txns: int,
                      ops_per_txn: Optional[int] = None) -> List[TxnSpec]:
        cfg = self.config
        n_ops = ops_per_txn or cfg.reads_per_txn
        out = []
        for t in range(n_txns):
            home = t % cfg.n_partitions
            # distinct keys: a txn must not touch its own dirty writes
            keys = set()
            while len(keys) < n_ops:
                keys.add(self._pick_key(home))
            keys = tuple(keys)
            inputs = keys + tuple(f"v{t}_{i}" for i in range(n_ops))
            out.append(TxnSpec(proc_id=PROC_RMW_BASE + n_ops, inputs=inputs,
                               home=home, kind="rmw", keys=keys))
        return out

    def make_mixed_txns(self, n_txns: int, update_fraction: float,
                        install_into=None) -> List[TxnSpec]:
        """YCSB-A (update_fraction=0.5) / YCSB-B (0.05) style mixes.

        The per-transaction composition is fixed at
        ``round(total * update_fraction)`` updates; pass a BionicDB as
        ``install_into`` to auto-register the needed procedure.
        """
        cfg = self.config
        total = cfg.reads_per_txn
        n_upd = max(0, min(total, round(total * update_fraction)))
        n_reads = total - n_upd
        proc_id = PROC_MIX_BASE + n_upd
        if install_into is not None and proc_id not in install_into.catalogue:
            install_into.register_procedure(
                proc_id, self.mixed_procedure(n_reads, n_upd))
        out = []
        for t in range(n_txns):
            home = t % cfg.n_partitions
            keys = set()
            while len(keys) < total:
                keys.add(self._pick_key(home))
            keys = tuple(keys)
            values = tuple(f"u{t}_{j}" for j in range(n_upd))
            out.append(TxnSpec(proc_id=proc_id, inputs=keys + values,
                               home=home, kind="mix", keys=keys))
        return out

    def mixed_layout(self) -> BlockLayout:
        total = self.config.reads_per_txn
        return BlockLayout(n_inputs=2 * total, n_outputs=total,
                           n_scratch=2, n_undo=total + 2, n_scan=2)

    def make_scan_txns(self, n_txns: int) -> List[TxnSpec]:
        cfg = self.config
        out = []
        for t in range(n_txns):
            home = t % cfg.n_partitions
            lo = home * cfg.records_per_partition
            # keep the whole range inside the partition
            start = lo + self._rng.randrange(
                max(1, cfg.records_per_partition - cfg.scan_length))
            out.append(TxnSpec(proc_id=PROC_SCAN, inputs=(start,),
                               home=home, kind="scan", keys=(start,)))
        return out

    def make_range_txns(self, n_txns: int,
                        span: Optional[int] = None) -> List[TxnSpec]:
        """RANGE_SCAN transactions over [start, start + span - 1], the
        whole range inside the home partition (span defaults to the
        configured scan length)."""
        cfg = self.config
        width = span or cfg.scan_length
        out = []
        for t in range(n_txns):
            home = t % cfg.n_partitions
            lo = home * cfg.records_per_partition
            start = lo + self._rng.randrange(
                max(1, cfg.records_per_partition - width))
            hi = start + width - 1
            out.append(TxnSpec(proc_id=PROC_RANGE, inputs=(start, hi),
                               home=home, kind="range", keys=(start, hi)))
        return out

    # -- submission helper --------------------------------------------------------
    def layout_for(self, spec: TxnSpec) -> BlockLayout:
        """The block layout one generated transaction needs."""
        if spec.kind == "scan":
            return self.scan_layout()
        if spec.kind == "range":
            return self.range_layout()
        if spec.kind == "mix":
            return self.mixed_layout()
        return self.read_layout(len(spec.keys))

    def submit_all(self, db: BionicDB, specs: Sequence[TxnSpec]):
        blocks, homes = [], []
        for spec in specs:
            blocks.append(db.new_block(spec.proc_id, list(spec.inputs),
                                       layout=self.layout_for(spec),
                                       worker=spec.home))
            homes.append(spec.home)
        return db.run_all(blocks, workers=homes), blocks
