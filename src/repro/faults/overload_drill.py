"""Metastable-failure overload drills: prove the system *recovers*.

The crash drills (:mod:`repro.faults.drill`) prove durability; the
cluster drills (:mod:`repro.faults.cluster_drill`) prove failover
safety.  This suite proves the third leg of production readiness:
**overload resilience** — that the retry router, circuit breakers,
retry budgets and brownout shedding of :mod:`repro.frontend` turn the
classic metastable-failure shapes into bounded, recoverable incidents
instead of self-sustaining outages.

Four seeded flavours (``OVERLOAD_FLAVORS``):

* ``retry_storm_failover`` — a node dies mid-stream; the
  :class:`~repro.frontend.router.ClusterRetryRouter` must converge the
  stream through the failover without double-executing anything, with
  retry amplification under its cap, and with every tripped breaker
  closed again by the end.
* ``migration_under_load`` — a live drain→transfer→re-own migration
  under traffic; submits during the window queue at the cluster and
  are released after the re-own, inside the unavailability budget.
* ``flash_crowd`` — a low-priority crowd arrives at several times the
  box's capacity while a high-priority base tenant keeps its SLO:
  brownout sheds the crowd first (exact per-class accounting), and
  base goodput returns to ≥ ``goodput_recovery_fraction`` of its
  steady state once the crowd passes.
* ``slow_client_storm`` — slow clients with aggressive retry policies
  overflow the bounded RX ring; the per-class retry budget caps the
  amplification so the storm decays instead of feeding itself.

Invariants shared by every flavour: exact terminal-outcome
conservation, recovery within the budget, and retry amplification
under ``amplification_cap``.  Cluster flavours additionally reuse
``reconcile()`` / ``durable_status()`` / ``partition_hashes()`` to
prove no-double-execution against an uninterrupted golden run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import BionicConfig, HAConfig
from ..core.system import BionicDB
from ..errors import BionicError
from ..frontend import (
    AdmissionConfig, BreakerConfig, BrownoutConfig, ClusterRetryRouter,
    ClusterRouterConfig, FrontEnd, FrontendConfig, NicConfig,
    ResilienceConfig, RetryBudgetConfig, SchedulerConfig, SessionConfig,
)
from ..mem.txnblock import TxnStatus
from .drill import DrillFailure, partition_hashes
from .plan import FaultPlan

__all__ = ["OverloadDrillConfig", "OverloadDrillResult", "OverloadDrill",
           "run_overload_sweep", "OVERLOAD_FLAVORS"]

#: flavours and their selection weights
OVERLOAD_FLAVORS: Tuple[Tuple[str, float], ...] = (
    ("retry_storm_failover", 0.30),
    ("flash_crowd", 0.27),
    ("slow_client_storm", 0.23),
    ("migration_under_load", 0.20),
)

_TERMINAL = (TxnStatus.COMMITTED.value, TxnStatus.ABORTED.value)


@dataclass
class OverloadDrillConfig:
    seed: int = 0
    #: force one flavour instead of drawing from the weights (tests)
    flavor: Optional[str] = None

    # -- cluster flavours ---------------------------------------------------
    n_txns: int = 14
    n_nodes: int = 3
    n_partitions: int = 4
    records_per_partition: int = 24
    max_events_per_txn: int = 2_000_000
    max_settle_rounds: int = 60
    #: settle rounds the stream must converge within to count as
    #: "recovered" (the recovery-budget invariant; < max_settle_rounds)
    recovery_rounds_budget: int = 40
    #: submit attempts per routed transaction must stay under this
    amplification_cap: float = 3.0
    ha: HAConfig = field(default_factory=HAConfig)

    # -- front-end flavours -------------------------------------------------
    #: base-tenant offered rate (well under the ~1.7 MTps saturation
    #: of the 2-worker kv-get box the drill builds)
    base_rate_tps: float = 400_000.0
    base_requests: int = 200
    base_deadline_ns: float = 120_000.0
    #: windowed goodput (success fraction of base requests created in
    #: the window) must be at least this, before and after the incident
    goodput_recovery_fraction: float = 0.9
    #: slack after the incident's last arrival before the recovery
    #: window opens
    recovery_margin_ns: float = 80_000.0


@dataclass
class OverloadDrillResult:
    seed: int
    flavor: str = ""
    event_txn: Optional[int] = None
    victim: Optional[int] = None
    offered: int = 0
    acked: int = 0
    shed: int = 0
    retries: int = 0
    retries_denied: int = 0
    amplification: float = 0.0
    recovery_rounds: Optional[int] = None
    pre_goodput: Optional[float] = None
    post_goodput: Optional[float] = None
    breaker_transitions: Dict[str, int] = field(default_factory=dict)
    ok: bool = False
    failure: Optional[str] = None
    fault_log: List[tuple] = field(default_factory=list)

    def summary(self) -> str:
        state = "ok" if self.ok else f"FAIL: {self.failure}"
        recovery = ""
        if self.recovery_rounds is not None:
            recovery = f" rounds={self.recovery_rounds}"
        if self.post_goodput is not None:
            recovery += (f" goodput={self.pre_goodput:.2f}"
                         f"->{self.post_goodput:.2f}")
        return (f"seed={self.seed} overload flavor={self.flavor} "
                f"offered={self.offered} acked={self.acked} "
                f"shed={self.shed} retries={self.retries} "
                f"amp={self.amplification:.2f} "
                f"breakers={self.breaker_transitions}{recovery} — {state}")


class OverloadDrill:
    """One seeded metastable-failure exercise; see the module docstring."""

    def __init__(self, config: Optional[OverloadDrillConfig] = None):
        self.config = config or OverloadDrillConfig()

    # -- flavour selection ---------------------------------------------------
    def _choose(self, plan: FaultPlan) -> str:
        if self.config.flavor is not None:
            return self.config.flavor
        roll = plan.draw()
        acc = 0.0
        flavor = OVERLOAD_FLAVORS[-1][0]
        for name, weight in OVERLOAD_FLAVORS:
            acc += weight
            if roll < acc:
                flavor = name
                break
        return flavor

    def run(self) -> OverloadDrillResult:
        cfg = self.config
        result = OverloadDrillResult(seed=cfg.seed)
        plan = FaultPlan(cfg.seed)
        flavor = self._choose(plan)
        result.flavor = flavor
        try:
            if flavor == "retry_storm_failover":
                self._cluster_flavor(plan, result, migrate=False)
            elif flavor == "migration_under_load":
                self._cluster_flavor(plan, result, migrate=True)
            elif flavor == "flash_crowd":
                self._flash_crowd(plan, result)
            elif flavor == "slow_client_storm":
                self._slow_client_storm(plan, result)
            else:
                raise DrillFailure(f"unknown overload flavour {flavor!r}")
            result.ok = True
        except DrillFailure as exc:
            result.failure = str(exc)
        except BionicError as exc:
            result.failure = f"{type(exc).__name__}: {exc}"
        result.fault_log = list(plan.fired_log)
        return result

    # -- cluster flavours: retry storm after failover, migration ------------
    def _workload(self):
        from ..workloads.ycsb import YcsbConfig, YcsbWorkload
        cfg = self.config
        wl = YcsbWorkload(YcsbConfig(
            records_per_partition=cfg.records_per_partition,
            n_partitions=cfg.n_partitions,
            reads_per_txn=4, payload="x" * 8, seed=cfg.seed))
        return wl, wl.make_rmw_txns(cfg.n_txns)

    def _golden(self, wl, specs):
        cfg = self.config
        db = BionicDB(BionicConfig(n_workers=cfg.n_partitions))
        wl.install(db, load_data=True)
        outcomes, engine_ns = [], []
        for spec in specs:
            block = db.new_block(spec.proc_id, list(spec.inputs),
                                 layout=wl.layout_for(spec), worker=spec.home)
            e0 = db.engine.now
            db.submit(block, spec.home)
            db.run(max_events=cfg.max_events_per_txn)
            engine_ns.append(db.engine.now - e0)
            outcomes.append(block.header.status.value)
        return outcomes, engine_ns, partition_hashes(db)

    def _cluster_flavor(self, plan: FaultPlan, result: OverloadDrillResult,
                        migrate: bool) -> None:
        from ..cluster.ha import HACluster
        cfg = self.config
        wl, specs = self._workload()
        golden_outcomes, golden_engine_ns, golden_hashes = \
            self._golden(wl, specs)
        layouts = [wl.layout_for(s) for s in specs]
        event_txn = plan.draw_int(1, max(1, cfg.n_txns - 3))
        # hit the partition the very next transaction targets, so the
        # incident is guaranteed to land in the live traffic's path
        target_part = specs[event_txn].home
        result.event_txn = event_txn
        result.offered = len(specs)

        cluster = HACluster(
            cfg.n_nodes, cfg.n_partitions,
            build_node=lambda: BionicDB(
                BionicConfig(n_workers=cfg.n_partitions)),
            install_node=lambda db: wl.install(db, load_data=True),
            ha=cfg.ha, faults=plan,
            max_events_per_txn=cfg.max_events_per_txn,
            # control-plane step shorter than the migration drain
            # barrier (links.inter_latency_ns), so in-flight traffic
            # actually lands inside the drain/transfer window instead
            # of time-warping past it between submits
            step_ns=1_000.0)
        router = ClusterRetryRouter(cluster, ClusterRouterConfig(
            budget=RetryBudgetConfig(ratio=0.5, burst=8),
            breaker=BreakerConfig(window=8, min_samples=2,
                                  open_ns=cfg.ha.heartbeat_timeout_ns,
                                  half_open_probes=2, close_after=1)))

        migration = None
        for i, spec in enumerate(specs):
            if i == event_txn:
                if migrate:
                    src = cluster.owner_of(target_part)
                    dst = next(n for k in range(1, cfg.n_nodes)
                               for n in [(src + k) % cfg.n_nodes]
                               if n in cluster.routable and n != src)
                    migration = cluster.begin_migration(target_part, dst)
                    result.victim = src
                else:
                    victim = cluster.owner_of(target_part)
                    result.victim = victim
                    cluster.kill_node(victim)
            router.route(i, spec, layouts[i])

        rounds = router.settle(cfg.max_settle_rounds,
                               cfg.ha.heartbeat_timeout_ns / 2)
        result.recovery_rounds = rounds
        if migrate:
            from ..cluster.migration import MigrationState
            for _ in range(8):
                if migration.state in (MigrationState.DONE,
                                       MigrationState.ABORTED):
                    break
                cluster.advance(cfg.ha.heartbeat_timeout_ns)
                router.pump()
        elif not cluster.failovers:
            for _ in range(8):
                if cluster.failovers:
                    break
                cluster.advance(cfg.ha.heartbeat_timeout_ns)
                router.pump()

        result.acked = len(router.acked)
        result.retries = router.attempts - router.first_attempts
        result.amplification = router.amplification
        result.breaker_transitions = router.breakers.transitions()

        # ---- recovery invariants ----
        if rounds > cfg.recovery_rounds_budget:
            raise DrillFailure(
                f"recovery blew its budget: {rounds} settle rounds "
                f"(budget {cfg.recovery_rounds_budget})")
        if router.amplification > cfg.amplification_cap:
            raise DrillFailure(
                f"retry amplification {router.amplification:.2f} exceeds "
                f"cap {cfg.amplification_cap}")
        if not router.breakers.all_closed():
            raise DrillFailure(
                f"breakers did not quiesce: {router.breakers.states()}")

        # ---- safety invariants (no double execution) ----
        if sorted(router.acked) != list(range(len(specs))):
            raise DrillFailure(
                f"acked set wrong: {sorted(router.acked)}")
        for i, (txn_id, outcome) in sorted(router.acked.items()):
            rc = cluster.reconcile(i)
            if rc is None or rc[0] != "acked" or rc[1] != outcome:
                raise DrillFailure(
                    f"reconcile disagrees for txn #{i}: acked {outcome!r} "
                    f"but reconcile says {rc!r} — double execution risk")
            durable = cluster.durable_status(specs[i].home, txn_id)
            if durable != outcome:
                raise DrillFailure(
                    f"durability violated: txn #{i} acked {outcome!r} but "
                    f"the authoritative log says {durable!r}")
            if outcome in _TERMINAL and outcome != golden_outcomes[i]:
                raise DrillFailure(
                    f"determinism violated: txn #{i} finished {outcome!r} "
                    f"but golden run saw {golden_outcomes[i]!r}")
        for entry in cluster.audit:
            if entry[0] == "exec" and entry[3] != entry[4]:
                raise DrillFailure(
                    f"stale-epoch execution: txn tag {entry[1]} ran under "
                    f"epoch {entry[3]} while claiming {entry[4]}")
        cluster_hashes = cluster.partition_hashes()
        if cluster_hashes != golden_hashes:
            differing = sorted(
                k for k in set(golden_hashes) | set(cluster_hashes)
                if golden_hashes.get(k) != cluster_hashes.get(k))
            raise DrillFailure(
                f"state divergence after overload in partitions {differing}")

        # ---- goodput recovery: untouched partitions unaffected ----
        untouched = [i for i in range(len(specs))
                     if specs[i].home != target_part
                     and i in cluster.txn_engine_ns]
        if untouched:
            got = sum(cluster.txn_engine_ns[i]
                      for i in untouched) / len(untouched)
            want = sum(golden_engine_ns[i]
                       for i in untouched) / len(untouched)
            if want > 0 and got > want * (2 - self.config.
                                          goodput_recovery_fraction):
                raise DrillFailure(
                    f"untouched-partition service time degraded "
                    f"{got / want:.2f}x vs golden — goodput did not recover")

        # ---- flavour-specific ----
        if migrate:
            from ..cluster.migration import MigrationState
            if migration.state is not MigrationState.DONE:
                raise DrillFailure(
                    f"migration did not complete: {migration.summary()}")
            if migration.unavailability_ns > cfg.ha.migration_budget_ns:
                raise DrillFailure(
                    f"migration unavailability "
                    f"{migration.unavailability_ns:.0f}ns exceeds budget")
            if (any(specs[i].home == target_part
                    for i in range(event_txn, len(specs)))
                    and router.queued_total == 0):
                raise DrillFailure(
                    "traffic hit the migrating partition but nothing was "
                    "queued-and-replayed")
        else:
            if not cluster.failovers:
                raise DrillFailure("node death never produced a failover")

    # -- front-end flavours: flash crowd, slow-client storm ------------------
    def _build_frontend(self, fe_config: FrontendConfig):
        db = BionicDB(BionicConfig(n_workers=2))
        db.define_table(self._kv_schema())
        from ..isa import Gp, ProcedureBuilder
        builder = ProcedureBuilder("get")
        builder.search(cp=0, table=0, key=builder.at(0))
        builder.commit_handler()
        builder.ret(0, 0)
        builder.store(Gp(0), builder.at(1))
        builder.commit()
        db.register_procedure(1, builder.build())
        for k in range(200):
            db.load(0, k, [f"v{k}"])
        fe = FrontEnd(db, fe_config)

        def factory(i):
            key = i % 200
            home = db.schemas.table(0).route(key, 2)
            return db.new_block(1, [key, None], worker=home), home

        return db, fe, factory

    @staticmethod
    def _kv_schema():
        from ..mem.schema import TableSchema
        return TableSchema(0, "kv", hash_buckets=512)

    @staticmethod
    def _window_goodput(session, lo_ns: float, hi_ns: float
                        ) -> Tuple[int, int]:
        """(requests created in [lo, hi), of those: commits in deadline)."""
        total = good = 0
        for req in session.requests:
            if not lo_ns <= req.created_at_ns < hi_ns:
                continue
            total += 1
            if req.outcome == "committed" and (
                    req.deadline_at_ns is None
                    or req.block.done_at_ns <= req.deadline_at_ns):
                good += 1
        return total, good

    def _check_recovery_windows(self, base, incident_start_ns: float,
                                incident_end_ns: float,
                                result: OverloadDrillResult) -> None:
        cfg = self.config
        pre_n, pre_good = self._window_goodput(base, 0.0, incident_start_ns)
        post_n, post_good = self._window_goodput(
            base, incident_end_ns + cfg.recovery_margin_ns, float("inf"))
        if pre_n == 0 or post_n == 0:
            raise DrillFailure(
                f"degenerate windows: pre={pre_n} post={post_n} base "
                f"requests — incident timing swallowed the baseline")
        result.pre_goodput = pre_good / pre_n
        result.post_goodput = post_good / post_n
        floor = cfg.goodput_recovery_fraction
        if result.pre_goodput < floor:
            raise DrillFailure(
                f"steady-state goodput only {result.pre_goodput:.2f} "
                f"before the incident (floor {floor})")
        if result.post_goodput < floor * result.pre_goodput:
            raise DrillFailure(
                f"goodput did not recover: {result.post_goodput:.2f} after "
                f"vs {result.pre_goodput:.2f} before (needs ≥ {floor:.0%} "
                f"of steady state)")

    def _check_class_conservation(self, report) -> None:
        for cls, row in report.by_class().items():
            resolved = (row["committed"] + row["aborted"]
                        + row["rejected"] + row["timed_out"])
            if resolved != row["offered"]:
                raise DrillFailure(
                    f"class {cls} accounting leaked: offered "
                    f"{row['offered']} != resolved {resolved}")
        if not report.conserved:
            raise DrillFailure("terminal-outcome conservation violated")

    def _check_amplification(self, report, budget: RetryBudgetConfig,
                             result: OverloadDrillResult) -> None:
        cfg = self.config
        by_class = report.by_class()
        for cls, row in by_class.items():
            bound = budget.burst + budget.ratio * row["offered"]
            if row["retries"] > bound:
                raise DrillFailure(
                    f"class {cls} retry amplification broke its budget: "
                    f"{row['retries']} retries > {bound:.0f} allowed")
        offered = sum(r["offered"] for r in by_class.values())
        retries = sum(r["retries"] for r in by_class.values())
        result.retries = retries
        result.retries_denied = sum(r["retries_denied"]
                                    for r in by_class.values())
        result.amplification = ((offered + retries) / offered
                                if offered else 0.0)
        if result.amplification > cfg.amplification_cap:
            raise DrillFailure(
                f"aggregate retry amplification {result.amplification:.2f} "
                f"exceeds cap {cfg.amplification_cap}")

    def _flash_crowd(self, plan: FaultPlan, result: OverloadDrillResult
                     ) -> None:
        cfg = self.config
        budget = RetryBudgetConfig(ratio=0.3, burst=8)
        fe_config = FrontendConfig(
            admission=AdmissionConfig(enabled=True, max_backlog=48),
            scheduler=SchedulerConfig(policy="fifo",
                                      max_inflight_per_worker=8),
            resilience=ResilienceConfig(
                enabled=True, budget=budget,
                brownout=BrownoutConfig(shed_at=(2.0, 0.85, 0.6))))
        db, fe, factory = self._build_frontend(fe_config)
        rng = random.Random(plan.draw_int(0, 2 ** 31 - 1))
        crowd_start = 150_000.0
        crowd_rate = 4_000_000.0 + plan.draw() * 4_000_000.0
        crowd_n = 180 + plan.draw_int(0, 120)
        base = fe.session(factory, SessionConfig(
            name="base", arrival="open", rate_tps=cfg.base_rate_tps,
            n_requests=cfg.base_requests, deadline_ns=cfg.base_deadline_ns,
            priority=0, weight=4.0, max_retries=2, retry_backoff_ns=5_000.0,
            retry_jitter=0.5), rng=rng)
        crowd = fe.session(factory, SessionConfig(
            name="crowd", arrival="open", rate_tps=crowd_rate,
            n_requests=crowd_n, deadline_ns=150_000.0, priority=2,
            weight=1.0, start_ns=crowd_start, max_retries=2,
            retry_backoff_ns=5_000.0, retry_jitter=0.5), rng=rng)
        report = fe.run()
        fe.detach()
        result.offered = report.offered
        result.acked = report.committed
        result.shed = report.rejected + report.timed_out
        result.breaker_transitions = report.breaker_transitions

        self._check_class_conservation(report)
        self._check_amplification(report, budget, result)
        crowd_end = max(r.created_at_ns for r in crowd.requests)
        self._check_recovery_windows(base, crowd_start, crowd_end, result)
        crowd_row = report.by_class()[2]
        if crowd_row["rejected_brownout"] == 0:
            raise DrillFailure(
                "the crowd never overloaded the box: brownout shed nothing "
                f"(crowd rate {crowd_rate / 1e6:.1f} MTps)")
        if base.stats.rejected_brownout:
            raise DrillFailure(
                f"brownout shed {base.stats.rejected_brownout} class-0 "
                f"requests — priority ordering violated")

    def _slow_client_storm(self, plan: FaultPlan,
                           result: OverloadDrillResult) -> None:
        cfg = self.config
        budget = RetryBudgetConfig(ratio=0.3, burst=10)
        fe_config = FrontendConfig(
            nic=NicConfig(rx_queue_depth=32, rx_process_ns=500.0),
            admission=AdmissionConfig(enabled=True, max_backlog=48),
            scheduler=SchedulerConfig(policy="fifo",
                                      max_inflight_per_worker=8),
            resilience=ResilienceConfig(
                enabled=True, budget=budget,
                brownout=BrownoutConfig(shed_at=(2.0, 0.85, 0.6))))
        db, fe, factory = self._build_frontend(fe_config)
        rng = random.Random(plan.draw_int(0, 2 ** 31 - 1))
        storm_start = 120_000.0
        storm_rate = 700_000.0 + plan.draw() * 400_000.0
        storm_n = 80 + plan.draw_int(0, 40)
        base = fe.session(factory, SessionConfig(
            name="base", arrival="open", rate_tps=cfg.base_rate_tps,
            n_requests=cfg.base_requests, deadline_ns=cfg.base_deadline_ns,
            priority=0, weight=4.0, max_retries=3, retry_backoff_ns=4_000.0,
            retry_jitter=0.5), rng=rng)
        storms = [
            fe.session(factory, SessionConfig(
                name=f"storm{k}", arrival="open", rate_tps=storm_rate,
                n_requests=storm_n, priority=2, weight=1.0,
                start_ns=storm_start, max_retries=6,
                retry_backoff_ns=2_000.0, retry_jitter=0.5), rng=rng)
            for k in range(3)
        ]
        report = fe.run()
        fe.detach()
        result.offered = report.offered
        result.acked = report.committed
        result.shed = report.rejected + report.timed_out
        result.breaker_transitions = report.breaker_transitions

        self._check_class_conservation(report)
        self._check_amplification(report, budget, result)
        if report.nic_dropped == 0 and not report.brownout_shed:
            raise DrillFailure(
                "the storm never pressured the box: no RX drops and no "
                f"brownout shed (storm rate {storm_rate / 1e3:.0f} kTps x3)")
        storm_end = max(r.created_at_ns
                        for s in storms for r in s.requests)
        self._check_recovery_windows(base, storm_start, storm_end, result)


def run_overload_sweep(seeds: Sequence[int],
                       verbose: bool = False) -> List[OverloadDrillResult]:
    """One overload drill per seed."""
    results = []
    for seed in seeds:
        drill = OverloadDrill(OverloadDrillConfig(seed=seed))
        result = drill.run()
        results.append(result)
        if verbose or not result.ok:
            print(result.summary())
            if not result.ok and result.fault_log:
                for site, n, t in result.fault_log:
                    print(f"    fired {site} (opportunity {n}, t={t:.0f}ns)")
    return results
