"""Deterministic fault injection and crash-recovery drills.

``repro.faults`` makes failure a first-class, *tested* behaviour of the
reproduction: a seeded :class:`FaultPlan` decides when torn writes,
bit flips, packet loss, link stalls and machine crashes happen, and the
:class:`RecoveryDrill` harness proves the §4.8 checkpoint +
command-log recovery path actually recovers — every acknowledged
transaction survives, and the recovered state matches an uninterrupted
golden run.

Run a drill sweep from the command line::

    python -m repro.faults.drill --seeds 200
"""

from .plan import (
    APPEND_BIT_FLIP, CRASH_AFTER_RENAME, CRASH_BEFORE_RENAME, FaultPlan,
    LINK_DROP, LINK_STALL, MACHINE_CRASH, NIC_CORRUPT, NIC_DROP,
    NIC_DUPLICATE, SITES, TORN_APPEND, Trigger, WORKER_CRASH,
)
_DRILL_NAMES = ("DrillConfig", "DrillResult", "RecoveryDrill", "run_sweep")


def __getattr__(name):
    # lazy: `python -m repro.faults.drill` must not import the drill
    # module twice (runpy), and plain fault injection must not pay for
    # the workload imports the drill pulls in
    if name in _DRILL_NAMES:
        from . import drill
        return getattr(drill, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FaultPlan", "Trigger", "SITES",
    "TORN_APPEND", "APPEND_BIT_FLIP",
    "CRASH_BEFORE_RENAME", "CRASH_AFTER_RENAME",
    "NIC_DROP", "NIC_DUPLICATE", "NIC_CORRUPT",
    "LINK_DROP", "LINK_STALL",
    "MACHINE_CRASH", "WORKER_CRASH",
    "DrillConfig", "DrillResult", "RecoveryDrill", "run_sweep",
]
