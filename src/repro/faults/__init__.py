"""Deterministic fault injection and crash-recovery drills.

``repro.faults`` makes failure a first-class, *tested* behaviour of the
reproduction: a seeded :class:`FaultPlan` decides when torn writes,
bit flips, packet loss, link stalls, link partitions, node deaths and
machine crashes happen; the :class:`RecoveryDrill` harness proves the
§4.8 checkpoint + command-log recovery path actually recovers — every
acknowledged transaction survives, and the recovered state matches an
uninterrupted golden run — and the :class:`ClusterDrill` harness proves
the same contract across nodes: failover, epoch fencing, and live
migration under seeded incidents.

Run both drill sweeps from the command line::

    python -m repro.faults.drill --seeds 200
"""

from .plan import (
    APPEND_BIT_FLIP, CRASH_AFTER_RENAME, CRASH_BEFORE_RENAME, FaultPlan,
    HEARTBEAT_LOSS, LINK_DROP, LINK_PARTITION, LINK_STALL, MACHINE_CRASH,
    NIC_CORRUPT, NIC_DROP, NIC_DUPLICATE, NODE_DEATH, SITES,
    STALE_EPOCH_SUBMIT, TORN_APPEND, Trigger, WORKER_CRASH,
)
_DRILL_NAMES = ("DrillConfig", "DrillResult", "RecoveryDrill", "run_sweep")
_CLUSTER_DRILL_NAMES = ("ClusterDrillConfig", "ClusterDrillResult",
                        "ClusterDrill", "run_cluster_sweep")
_OVERLOAD_DRILL_NAMES = ("OverloadDrillConfig", "OverloadDrillResult",
                         "OverloadDrill", "run_overload_sweep")


def __getattr__(name):
    # lazy: `python -m repro.faults.drill` must not import the drill
    # module twice (runpy), and plain fault injection must not pay for
    # the workload imports the drills pull in
    if name in _DRILL_NAMES:
        from . import drill
        return getattr(drill, name)
    if name in _CLUSTER_DRILL_NAMES:
        from . import cluster_drill
        return getattr(cluster_drill, name)
    if name in _OVERLOAD_DRILL_NAMES:
        from . import overload_drill
        return getattr(overload_drill, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FaultPlan", "Trigger", "SITES",
    "TORN_APPEND", "APPEND_BIT_FLIP",
    "CRASH_BEFORE_RENAME", "CRASH_AFTER_RENAME",
    "NIC_DROP", "NIC_DUPLICATE", "NIC_CORRUPT",
    "LINK_DROP", "LINK_STALL", "LINK_PARTITION",
    "HEARTBEAT_LOSS", "NODE_DEATH", "STALE_EPOCH_SUBMIT",
    "MACHINE_CRASH", "WORKER_CRASH",
    "DrillConfig", "DrillResult", "RecoveryDrill", "run_sweep",
    "ClusterDrillConfig", "ClusterDrillResult", "ClusterDrill",
    "run_cluster_sweep",
    "OverloadDrillConfig", "OverloadDrillResult", "OverloadDrill",
    "run_overload_sweep",
]
