"""Cluster failover/migration drills: prove HA safety, don't assert it.

The single-node :mod:`repro.faults.drill` proves crash recovery; this
harness proves the *cluster* invariants under seeded incidents.  One
drill runs a YCSB RMW stream two ways:

1. **Golden** — an uninterrupted single-machine run (all partitions on
   one full-width BionicDB): per-transaction outcomes, per-transaction
   engine time, final per-partition content hashes.
2. **Cluster** — the same stream through an :class:`HACluster` (three
   nodes, epoch-fenced router, owner→follower log shipping) while a
   plan-chosen incident plays out.  The client behaves the way
   :class:`~repro.frontend.session.ClientSession` does: typed retryable
   errors back off and retry; :class:`StaleEpochError` refreshes the
   cached epoch first; a retry *reconciles against the authoritative
   log* before re-executing, so a committed transaction is never
   double-applied.

Incident flavours (``_CLUSTER_FLAVORS``): clean runs, node death,
failure-detector false positives (a muted heartbeat egress — the node
still runs, and fencing must hold), random heartbeat loss storms, link
partitions under traffic, injected stale-epoch submits, and live
migration — including the source or destination dying mid-transfer.

Invariants checked after every drill, regardless of flavour:

* **Durability** — every transaction acknowledged to the client is
  present, with the same outcome, in the *current owner's* log
  (followers inherit acked work across failovers by construction).
* **Completeness/determinism** — after retries settle, every
  transaction reaches a terminal outcome equal to the golden run's.
* **Equivalence** — per-partition content hashes read from current
  owners equal the golden run's.
* **Fencing** — the audit trail contains no execution whose claimed
  epoch differs from the ownership epoch that authorized it.

Flavour-specific checks ride on top: failovers must actually happen
(node death, false positive), stale submits must be rejected, and a
completed live migration must respect its unavailability budget while
per-transaction engine time on *untouched* partitions stays within 5%
of golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import BionicConfig, HAConfig
from ..core.system import BionicDB
from ..errors import (
    BionicError, MigrationError, PartitionUnavailableError,
    ReplicationStalledError, StaleEpochError,
)
from ..mem.txnblock import TxnStatus
from .drill import DrillFailure, partition_hashes
from .plan import (
    FaultPlan, HEARTBEAT_LOSS, LINK_PARTITION, NODE_DEATH,
    STALE_EPOCH_SUBMIT,
)

__all__ = ["ClusterDrillConfig", "ClusterDrillResult", "ClusterDrill",
           "run_cluster_sweep", "CLUSTER_FLAVORS"]

#: incident flavours and their selection weights
CLUSTER_FLAVORS: Tuple[Tuple[str, float], ...] = (
    ("node_death", 0.18),        # a node powers off mid-stream
    ("false_positive", 0.12),    # heartbeat egress wedges; node still runs
    ("hb_loss_storm", 0.10),     # random heartbeat loss; detector holds
    ("link_partition", 0.12),    # a node pair loses connectivity
    ("stale_epoch", 0.12),       # a submit claims an outdated epoch
    ("migration_live", 0.14),    # drain→transfer→re-own under traffic
    ("migration_src_death", 0.10),   # source dies mid-transfer
    ("migration_dst_death", 0.07),   # destination dies mid-transfer
    ("clean", 0.05),             # no incident; everything must still hold
)

_TERMINAL = (TxnStatus.COMMITTED.value, TxnStatus.ABORTED.value)


@dataclass
class ClusterDrillConfig:
    n_txns: int = 18
    n_nodes: int = 3
    n_partitions: int = 4
    seed: int = 0
    records_per_partition: int = 32
    reads_per_txn: int = 4
    max_events_per_txn: int = 2_000_000
    #: settle rounds after the stream before declaring non-convergence
    max_settle_rounds: int = 60
    ha: HAConfig = field(default_factory=HAConfig)


@dataclass
class ClusterDrillResult:
    seed: int
    flavor: str = ""
    event_txn: Optional[int] = None
    victim: Optional[int] = None
    acked: int = 0
    reexecuted: int = 0
    stale_rejections: int = 0
    failovers: int = 0
    migrations: int = 0
    unavailability_ns: Optional[float] = None
    ok: bool = False
    failure: Optional[str] = None
    fault_log: List[tuple] = field(default_factory=list)

    def summary(self) -> str:
        state = "ok" if self.ok else f"FAIL: {self.failure}"
        unav = (f" unavail={self.unavailability_ns:.0f}ns"
                if self.unavailability_ns is not None else "")
        return (f"seed={self.seed} cluster flavor={self.flavor} "
                f"event@{self.event_txn} victim={self.victim} "
                f"acked={self.acked} reexec={self.reexecuted} "
                f"stale_rej={self.stale_rejections} "
                f"failovers={self.failovers}{unav} — {state}")


class ClusterDrill:
    """One seeded cluster-incident exercise; see the module docstring."""

    def __init__(self, config: Optional[ClusterDrillConfig] = None):
        self.config = config or ClusterDrillConfig()

    # -- workload ------------------------------------------------------------
    def _workload(self):
        from ..workloads.ycsb import YcsbConfig, YcsbWorkload
        cfg = self.config
        wl = YcsbWorkload(YcsbConfig(
            records_per_partition=cfg.records_per_partition,
            n_partitions=cfg.n_partitions,
            reads_per_txn=cfg.reads_per_txn,
            payload="x" * 8, seed=cfg.seed))
        return wl, wl.make_rmw_txns(cfg.n_txns)

    def _golden(self, wl, specs):
        cfg = self.config
        db = BionicDB(BionicConfig(n_workers=cfg.n_partitions))
        wl.install(db, load_data=True)
        outcomes, engine_ns = [], []
        for spec in specs:
            block = db.new_block(spec.proc_id, list(spec.inputs),
                                 layout=wl.layout_for(spec), worker=spec.home)
            e0 = db.engine.now
            db.submit(block, spec.home)
            db.run(max_events=cfg.max_events_per_txn)
            engine_ns.append(db.engine.now - e0)
            outcomes.append(block.header.status.value)
        return outcomes, engine_ns, partition_hashes(db)

    # -- schedule ------------------------------------------------------------
    def _choose(self, plan: FaultPlan):
        cfg = self.config
        roll = plan.draw()
        acc = 0.0
        flavor = CLUSTER_FLAVORS[-1][0]
        for name, weight in CLUSTER_FLAVORS:
            acc += weight
            if roll < acc:
                flavor = name
                break
        event_txn = plan.draw_int(1, max(1, cfg.n_txns - 3))
        victim = plan.draw_int(0, cfg.n_nodes - 1)
        mig_part = plan.draw_int(0, cfg.n_partitions - 1)
        if flavor == "hb_loss_storm":
            plan.arm(HEARTBEAT_LOSS, prob=0.25, times=None)
        elif flavor == "link_partition":
            plan.arm(LINK_PARTITION, nth=plan.draw_int(1, 40))
        elif flavor == "stale_epoch":
            plan.arm(STALE_EPOCH_SUBMIT, nth=plan.draw_int(1, cfg.n_txns))
        elif flavor in ("node_death", "false_positive",
                        "migration_src_death", "migration_dst_death"):
            plan.arm(NODE_DEATH, nth=1)
        return flavor, event_txn, victim, mig_part

    # -- the drill -----------------------------------------------------------
    def run(self) -> ClusterDrillResult:
        cfg = self.config
        result = ClusterDrillResult(seed=cfg.seed)
        wl, specs = self._workload()
        golden_outcomes, golden_engine_ns, golden_hashes = \
            self._golden(wl, specs)
        plan = FaultPlan(cfg.seed)
        flavor, event_txn, victim, mig_part = self._choose(plan)
        result.flavor = flavor
        result.event_txn = event_txn
        cluster = _build_cluster(cfg, wl, plan)
        try:
            self._drive(cluster, wl, specs, plan, flavor, event_txn, victim,
                        mig_part, golden_outcomes, golden_engine_ns,
                        golden_hashes, result)
            result.ok = True
        except DrillFailure as exc:
            result.failure = str(exc)
        except BionicError as exc:
            result.failure = f"{type(exc).__name__}: {exc}"
        result.fault_log = list(plan.fired_log)
        result.failovers = len(cluster.failovers)
        result.migrations = len(cluster.migrations)
        return result

    def _drive(self, cluster, wl, specs, plan, flavor, event_txn, victim,
               mig_part, golden_outcomes, golden_engine_ns, golden_hashes,
               result: ClusterDrillResult) -> None:
        cfg = self.config
        layouts = [wl.layout_for(s) for s in specs]
        epochs: Dict[int, int] = {p: cluster.current_epoch(p)
                                  for p in range(cfg.n_partitions)}
        acked: Dict[int, Tuple[int, str]] = {}      # tag -> (txn_id, outcome)
        pending: Dict[int, List[int]] = {p: [] for p in range(cfg.n_partitions)}
        stalled: Set[int] = set()
        queued: Set[int] = set()
        migration = None

        def drain_router():
            for tag, res in list(cluster.released.items()):
                acked[tag] = (res.txn_id, res.outcome)
                queued.discard(tag)
                del cluster.released[tag]
            while cluster.deferred:
                spec, _layout, tag = cluster.deferred.pop(0)
                queued.discard(tag)
                if tag not in pending[spec.home]:
                    pending[spec.home].append(tag)
                if cluster.attempt_of(tag) is not None:
                    stalled.add(tag)
            for p in pending:
                pending[p].sort()

        def try_one(i: int) -> bool:
            """One submission attempt for spec ``i``; True = placed
            (acked or queued at the router)."""
            spec = specs[i]
            p = spec.home
            if i in stalled:
                rc = cluster.reconcile(i)
                if rc is not None:
                    state, status = rc
                    if state == "acked":
                        stalled.discard(i)
                        acked[i] = (cluster.attempt_of(i)[1], status)
                        return True
                    return False        # executed, replication still stuck
                stalled.discard(i)      # no durable trace: re-execute
                result.reexecuted += 1
            for _ in range(3):          # stale-epoch refresh loop
                try:
                    res = cluster.submit_spec(spec, layouts[i],
                                              client_epoch=epochs.get(p),
                                              tag=i)
                except StaleEpochError:
                    result.stale_rejections += 1
                    epochs[p] = cluster.current_epoch(p)
                    continue
                except PartitionUnavailableError:
                    return False        # back off; failover will happen
                except ReplicationStalledError:
                    stalled.add(i)
                    return False
                if res.status == "queued":
                    queued.add(i)
                else:
                    acked[i] = (res.txn_id, res.outcome)
                return True
            raise DrillFailure(
                f"txn #{i} still fenced after repeated epoch refreshes")

        def flush(p: int) -> None:
            while pending[p]:
                if not try_one(pending[p][0]):
                    return
                pending[p].pop(0)

        def fire_event():
            nonlocal migration, victim
            if flavor == "node_death":
                cluster.kill_node(victim)
            elif flavor == "false_positive":
                cluster.links.mute_heartbeats(
                    victim,
                    cluster.now_ns + 4 * cfg.ha.heartbeat_timeout_ns)
            elif flavor in ("migration_live", "migration_src_death",
                            "migration_dst_death"):
                src = cluster.owner_of(mig_part)
                dst = next(n for k in range(1, cfg.n_nodes)
                           for n in [(src + k) % cfg.n_nodes]
                           if n in cluster.routable and n != src)
                migration = cluster.begin_migration(mig_part, dst)
                if flavor == "migration_src_death":
                    victim = src
                    cluster.kill_node(src)
                elif flavor == "migration_dst_death":
                    victim = dst
                    cluster.kill_node(dst)

        # ---- the stream ----
        for i, spec in enumerate(specs):
            if i == event_txn:
                fire_event()
            p = spec.home
            drain_router()
            flush(p)
            if pending[p]:
                pending[p].append(i)    # preserve per-partition order
                continue
            if not try_one(i):
                pending[p].append(i)

        # ---- settle: let detection, failover and migration complete ----
        for _ in range(cfg.max_settle_rounds):
            drain_router()
            for p in sorted(pending):
                flush(p)
            outstanding = queued or any(pending.values())
            if not outstanding and len(acked) == len(specs):
                break
            cluster.advance(cfg.ha.heartbeat_timeout_ns / 2)
        else:
            missing = sorted(set(range(len(specs))) - set(acked))
            raise DrillFailure(
                f"stream did not converge: txns {missing} never acked "
                f"(pending={ {p: v for p, v in pending.items() if v} })")

        # a short stream can finish before the failure detector declares
        # the victim; the flavours that promise a failover get detection
        # time before the invariants are judged
        if flavor in ("node_death", "false_positive"):
            for _ in range(8):
                if cluster.failovers:
                    break
                cluster.advance(cfg.ha.heartbeat_timeout_ns)

        result.victim = victim
        result.acked = len(acked)

        # ---- invariants ----
        for i, (txn_id, outcome) in sorted(acked.items()):
            durable = cluster.durable_status(specs[i].home, txn_id)
            if durable != outcome:
                raise DrillFailure(
                    f"durability violated: txn #{i} acked {outcome!r} but "
                    f"the authoritative log says {durable!r}")
            if outcome in _TERMINAL and outcome != golden_outcomes[i]:
                raise DrillFailure(
                    f"determinism violated: txn #{i} finished {outcome!r} "
                    f"but golden run saw {golden_outcomes[i]!r}")
        for entry in cluster.audit:
            if entry[0] == "exec" and entry[3] != entry[4]:
                raise DrillFailure(
                    f"stale-epoch execution: txn tag {entry[1]} ran under "
                    f"epoch {entry[3]} while claiming {entry[4]}")
        cluster_hashes = cluster.partition_hashes()
        if cluster_hashes != golden_hashes:
            differing = sorted(
                k for k in set(golden_hashes) | set(cluster_hashes)
                if golden_hashes.get(k) != cluster_hashes.get(k))
            raise DrillFailure(
                f"state divergence after incidents in partitions {differing}")

        # ---- flavour-specific checks ----
        if flavor in ("node_death", "false_positive"):
            if not cluster.failovers:
                raise DrillFailure(f"{flavor}: no failover happened")
        if flavor == "stale_epoch":
            if not any(e[0] == "reject_stale" for e in cluster.audit):
                raise DrillFailure("stale_epoch: injected submit was not "
                                   "rejected")
        if flavor == "migration_live":
            from ..cluster.migration import MigrationState
            if migration is None or migration.state is not MigrationState.DONE:
                raise DrillFailure(
                    f"migration did not complete: "
                    f"{migration.summary() if migration else 'never started'}")
            result.unavailability_ns = migration.unavailability_ns
            if migration.unavailability_ns > cfg.ha.migration_budget_ns:
                raise DrillFailure(
                    f"migration unavailability "
                    f"{migration.unavailability_ns:.0f}ns exceeds budget")
            untouched = [i for i in range(len(specs))
                         if specs[i].home != mig_part
                         and i in cluster.txn_engine_ns]
            if untouched:
                got = sum(cluster.txn_engine_ns[i]
                          for i in untouched) / len(untouched)
                want = sum(golden_engine_ns[i]
                           for i in untouched) / len(untouched)
                if want > 0 and abs(got - want) / want > 0.05:
                    raise DrillFailure(
                        f"untouched-partition throughput drifted "
                        f"{abs(got - want) / want:.1%} from golden "
                        f"(got {got:.0f}ns/txn, golden {want:.0f}ns/txn)")
        if flavor in ("migration_src_death", "migration_dst_death"):
            from ..cluster.migration import MigrationState
            if migration is not None and migration.state not in (
                    MigrationState.DONE, MigrationState.ABORTED):
                raise DrillFailure(
                    f"mid-migration death left the state machine wedged: "
                    f"{migration.summary()}")


def _build_cluster(cfg: ClusterDrillConfig, wl, plan: FaultPlan):
    from ..cluster.ha import HACluster
    return HACluster(
        cfg.n_nodes, cfg.n_partitions,
        build_node=lambda: BionicDB(BionicConfig(n_workers=cfg.n_partitions)),
        install_node=lambda db: wl.install(db, load_data=True),
        ha=cfg.ha, faults=plan,
        max_events_per_txn=cfg.max_events_per_txn)


def run_cluster_sweep(seeds: Sequence[int], n_txns: int = 18,
                      verbose: bool = False) -> List[ClusterDrillResult]:
    """One cluster drill per seed."""
    results = []
    for seed in seeds:
        drill = ClusterDrill(ClusterDrillConfig(n_txns=n_txns, seed=seed))
        result = drill.run()
        results.append(result)
        if verbose or not result.ok:
            print(result.summary())
            if not result.ok and result.fault_log:
                for site, n, t in result.fault_log:
                    print(f"    fired {site} (opportunity {n}, t={t:.0f}ns)")
    return results
