"""Deterministic, seeded fault injection.

A :class:`FaultPlan` is the single source of randomness and the single
decision point for every injected failure in a run.  Layers that can
fail (durable storage, the NIC, the cluster interconnect, the engine)
take an optional ``faults`` argument; when it is ``None`` — the default
everywhere — the hooks are a single ``is None`` test and the system
behaves bit-for-bit as before.  When a plan is armed, each *injection
site* asks the plan at every opportunity whether the fault fires, and
draws any fault parameters (torn-write byte offset, flipped bit index,
stall length) from the plan's RNG, so a failing run is reproducible
from its seed alone.

Sites are string constants (:data:`SITES`); triggers are predicates
over the opportunity count at that site, simulated time, or a
per-opportunity probability.  The plan also records every fault it
fired (``fired_log``) so a drill report can say exactly what was
injected where.

Crash faults additionally flip the plan's ``crashed`` latch: a crashed
machine's durable files must not accept writes from ``finally`` blocks
and other cleanup paths that run while the exception unwinds, so every
durable hook re-raises :class:`~repro.errors.SimulatedCrash` once the
latch is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import random

from ..errors import FaultError, SimulatedCrash

__all__ = [
    "FaultPlan", "Trigger", "SITES",
    "TORN_APPEND", "APPEND_BIT_FLIP",
    "CRASH_BEFORE_RENAME", "CRASH_AFTER_RENAME",
    "NIC_DROP", "NIC_DUPLICATE", "NIC_CORRUPT",
    "LINK_DROP", "LINK_STALL", "LINK_PARTITION",
    "MACHINE_CRASH", "WORKER_CRASH",
    "HEARTBEAT_LOSS", "NODE_DEATH", "STALE_EPOCH_SUBMIT",
]

# -- injection sites ---------------------------------------------------------
#: an incremental frame append is cut at an arbitrary byte, then crash
TORN_APPEND = "durable.torn_append"
#: an incremental frame append has one bit flipped, then crash
APPEND_BIT_FLIP = "durable.append_bit_flip"
#: crash after the tmp file is written but before os.replace
CRASH_BEFORE_RENAME = "durable.crash_before_rename"
#: crash immediately after os.replace lands the new artifact
CRASH_AFTER_RENAME = "durable.crash_after_rename"
#: packet lost on the wire (never reaches the RX ring)
NIC_DROP = "nic.drop"
#: packet delivered twice into the RX ring
NIC_DUPLICATE = "nic.duplicate"
#: packet corrupted in flight; the RX checksum discards it
NIC_CORRUPT = "nic.corrupt"
#: inter-node message lost on the cluster interconnect
LINK_DROP = "interconnect.drop"
#: inter-node message stalled by a drawn extra delay
LINK_STALL = "interconnect.stall"
#: a directed node pair loses connectivity for a drawn duration; every
#: message on the cut lanes (either direction) is lost until it heals
LINK_PARTITION = "interconnect.partition"
#: whole-machine crash at an engine event count (see Engine.crash_at_fired)
MACHINE_CRASH = "machine.crash"
#: one partition worker dies mid-flight (see BionicDB.crash_worker)
WORKER_CRASH = "worker.crash"
#: a heartbeat message is silently dropped (failure-detector food)
HEARTBEAT_LOSS = "cluster.heartbeat_loss"
#: a whole cluster node dies (its partitions must fail over)
NODE_DEATH = "cluster.node_death"
#: a client submits a transaction tagged with a stale ownership epoch
STALE_EPOCH_SUBMIT = "cluster.stale_epoch_submit"

SITES = frozenset({
    TORN_APPEND, APPEND_BIT_FLIP, CRASH_BEFORE_RENAME, CRASH_AFTER_RENAME,
    NIC_DROP, NIC_DUPLICATE, NIC_CORRUPT,
    LINK_DROP, LINK_STALL, LINK_PARTITION,
    MACHINE_CRASH, WORKER_CRASH,
    HEARTBEAT_LOSS, NODE_DEATH, STALE_EPOCH_SUBMIT,
})


@dataclass
class Trigger:
    """When a site's fault fires.

    Exactly one of ``nth`` (fire on the Nth opportunity at the site,
    1-based) or ``prob`` (fire per-opportunity with this probability)
    selects opportunities; ``after_ns`` additionally arms the trigger
    only once simulated time reaches it, and ``times`` bounds how often
    it may fire (``None`` = unbounded).
    """

    nth: Optional[int] = None
    prob: float = 0.0
    after_ns: Optional[float] = None
    times: Optional[int] = 1
    #: remaining fire budget (mutated as the trigger fires)
    remaining: Optional[int] = field(default=None, init=False)

    def __post_init__(self):
        if (self.nth is None) == (self.prob <= 0.0):
            raise FaultError("a trigger needs exactly one of nth / prob",
                             nth=self.nth, prob=self.prob)
        if self.nth is not None and self.nth < 1:
            raise FaultError("nth is 1-based", nth=self.nth)
        if not 0.0 <= self.prob <= 1.0:
            raise FaultError("prob must be in [0, 1]", prob=self.prob)
        if self.times is not None and self.times < 1:
            raise FaultError("times must be >= 1 (or None)", times=self.times)
        self.remaining = self.times


class FaultPlan:
    """A seeded schedule of injected failures.

    ::

        plan = FaultPlan(seed=7)
        plan.arm(TORN_APPEND, nth=3)          # 3rd append is torn
        plan.arm(NIC_DROP, prob=0.01)         # 1% wire loss
        log = CommandLog(path, faults=plan)   # thread through the layers
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._triggers: Dict[str, List[Trigger]] = {}
        self._opportunities: Dict[str, int] = {}
        #: every fault fired: (site, opportunity#, sim-time-ns)
        self.fired_log: List[Tuple[str, int, float]] = []
        #: latched once a crash fault fires anywhere
        self.crashed = False
        self.crash_site: Optional[str] = None

    # -- configuration -------------------------------------------------------
    def arm(self, site: str, *, nth: Optional[int] = None, prob: float = 0.0,
            after_ns: Optional[float] = None,
            times: Optional[int] = 1) -> "FaultPlan":
        """Arm one trigger at ``site``; returns self for chaining."""
        if site not in SITES:
            raise FaultError("unknown injection site", site=site,
                             known=sorted(SITES))
        self._triggers.setdefault(site, []).append(
            Trigger(nth=nth, prob=prob, after_ns=after_ns, times=times))
        return self

    def armed(self, site: str) -> bool:
        return bool(self._triggers.get(site))

    # -- the decision point --------------------------------------------------
    def fires(self, site: str, now_ns: float = 0.0) -> bool:
        """Count one opportunity at ``site`` and decide whether a fault
        fires there.  Deterministic given the plan and the opportunity
        sequence: the RNG is consumed only by probabilistic triggers."""
        count = self._opportunities.get(site, 0) + 1
        self._opportunities[site] = count
        for trig in self._triggers.get(site, ()):
            if trig.remaining is not None and trig.remaining <= 0:
                continue
            if trig.after_ns is not None and now_ns < trig.after_ns:
                continue
            if trig.nth is not None:
                hit = count == trig.nth
            else:
                hit = self.rng.random() < trig.prob
            if hit:
                if trig.remaining is not None:
                    trig.remaining -= 1
                self.fired_log.append((site, count, now_ns))
                return True
        return False

    def opportunities(self, site: str) -> int:
        """How many times ``site`` has been consulted."""
        return self._opportunities.get(site, 0)

    # -- fault parameters ----------------------------------------------------
    def draw(self) -> float:
        """A uniform [0, 1) draw for a fault parameter."""
        return self.rng.random()

    def draw_int(self, lo: int, hi: int) -> int:
        """A uniform integer in [lo, hi] for a fault parameter."""
        return self.rng.randint(lo, hi)

    # -- crash latch ---------------------------------------------------------
    def crash(self, site: str, **details) -> SimulatedCrash:
        """Latch the crashed state and build the exception to raise."""
        if not self.crashed:
            self.crashed = True
            self.crash_site = site
        return SimulatedCrash(f"injected crash at {site}",
                              site=site, seed=self.seed, **details)

    def check_alive(self) -> None:
        """Durable hooks call this first: a crashed machine's disk does
        not accept writes from unwinding cleanup code."""
        if self.crashed:
            raise SimulatedCrash("machine already crashed",
                                 site=self.crash_site, seed=self.seed)

    # -- reporting -----------------------------------------------------------
    def describe(self) -> str:
        if not self.fired_log:
            return f"FaultPlan(seed={self.seed}): no faults fired"
        lines = [f"FaultPlan(seed={self.seed}): {len(self.fired_log)} fired"]
        lines.extend(f"  {site} (opportunity {n}, t={t:.0f}ns)"
                     for site, n, t in self.fired_log)
        return "\n".join(lines)
