"""BionicDB reproduction (EDBT 2019).

A cycle-level, functional simulation of BionicDB — an FPGA OLTP engine
with index pipelining, transaction interleaving and on-chip message
passing — plus a Silo-style software baseline, workloads (YCSB, TPC-C)
and a benchmark harness reproducing every table and figure in §5 of
the paper.
"""

__version__ = "1.1.0"

from .errors import (  # noqa: E402  (re-export the error taxonomy)
    BionicError, ConfigError, CorruptionError, FrontendError,
    ProcedureNotFoundError, StuckTransactionError, SubmissionError,
    ValidationError, VerificationError, WorkloadError,
)

__all__ = [
    "BionicError", "ConfigError", "CorruptionError", "FrontendError",
    "ProcedureNotFoundError", "StuckTransactionError", "SubmissionError",
    "ValidationError", "VerificationError", "WorkloadError",
]
