"""BionicDB reproduction (EDBT 2019).

A cycle-level, functional simulation of BionicDB — an FPGA OLTP engine
with index pipelining, transaction interleaving and on-chip message
passing — plus a Silo-style software baseline, workloads (YCSB, TPC-C)
and a benchmark harness reproducing every table and figure in §5 of
the paper.
"""

__version__ = "1.0.0"
